// ANALYZE-style statistics collection. The paper leaves the choice among
// join strategies to "the optimizer" (§5.1) without saying where its
// knowledge comes from; a modern engine answers with collected statistics.
// The first Analyze scans every extent once and records, per base table, the
// row count, per-attribute distinct-value counts, equi-depth histograms of
// the scalar attribute values (and of set-element values), and the average
// cardinality of set-valued attributes. From then on the store maintains
// that state incrementally: every Insert absorbs the new row into the live
// counters and histograms in place, so a long-lived server never re-scans an
// extent to keep its planner fed. Analyze publishes an immutable DBStats
// copy of the live state, memoized until the next mutation; the per-store
// stats epoch (StatsEpoch) advances only on material drift — an index
// change, or enough rows since the last bump to matter — and is what the
// serving layer's plan cache keys on.
package storage

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
	"repro/internal/value"
)

// Stats-epoch drift policy: the epoch advances once an extent has absorbed
// at least epochRowFloor rows since the last bump, or epochRowFrac of the
// rows it had then, whichever is larger. Bumping on every insert would make
// an epoch-keyed plan cache useless under a write-heavy load; plans stay
// result-correct under any statistics (the differential suite proves every
// strategy equal), so deferring the bump only defers plan-quality
// adaptation, never correctness.
const (
	epochRowFloor = 64
	epochRowFrac  = 0.10
)

// TableStats holds the collected statistics of one extent.
type TableStats struct {
	// Rows is the extent cardinality.
	Rows int
	// Distinct maps a scalar top-level attribute name to its number of
	// distinct values. Set-valued attributes are not counted — hashing whole
	// sets per row is expensive and no consumer prices set NDV; their shape
	// is AvgSetSize.
	Distinct map[string]int
	// AvgSetSize maps each set-valued attribute to the mean cardinality of
	// its sets across the extent.
	AvgSetSize map[string]float64
	// Mixed lists attributes that are set-valued in only some rows (or
	// scalar in some, set in others): their statistics are unknown — a
	// distinct count over just the scalar rows would be an undercount
	// presented as exact, and an average over just the set rows likewise.
	Mixed []string
	// Indexes maps each indexed attribute to its index kind ("hash" or
	// "ordered"), as registered with Store.CreateIndex at collection time.
	Indexes map[string]string
	// Hist maps each scalar attribute to the equi-depth histogram of its
	// values; Mixed attributes get none (the same undercount argument as
	// Distinct applies).
	Hist map[string]*stats.Histogram
	// ElemHist maps each set-valued attribute to the equi-depth histogram of
	// the elements pooled across all of the extent's sets — the element
	// distribution a membership probe runs against.
	ElemHist map[string]*stats.Histogram
}

// DBStats is the database-wide result of Analyze: extent name → TableStats.
// It implements the plan package's Statistics interface. A published DBStats
// is immutable — later inserts mutate the store's live state and are
// reflected only by a later Analyze.
type DBStats struct {
	Tables map[string]TableStats
	// Epoch is the store's stats epoch at publication time; a plan priced
	// against this DBStats is cacheable until Store.StatsEpoch drifts past
	// it.
	Epoch uint64
}

// RowCount reports the collected cardinality of an extent, or -1 if the
// extent was not analyzed.
func (d *DBStats) RowCount(extent string) int {
	t, ok := d.Tables[extent]
	if !ok {
		return -1
	}
	return t.Rows
}

// DistinctValues reports the collected distinct-value count of an attribute,
// or 0 if unknown.
func (d *DBStats) DistinctValues(extent, attr string) int {
	return d.Tables[extent].Distinct[attr]
}

// AvgSetSize reports the mean cardinality of a set-valued attribute, or 0 if
// the attribute is not set-valued or was not analyzed.
func (d *DBStats) AvgSetSize(extent, attr string) float64 {
	return d.Tables[extent].AvgSetSize[attr]
}

// Attributes lists an extent's collected top-level attribute names (scalar,
// set-valued, and mixed), sorted, or nil if the extent was not analyzed. The
// planner's join-order enumerator uses it to resolve which base relation a
// predicate over concatenated join tuples refers to, so mixed attributes are
// listed even though their statistics are unknown.
func (d *DBStats) Attributes(extent string) []string {
	t, ok := d.Tables[extent]
	if !ok {
		return nil
	}
	attrs := make([]string, 0, len(t.Distinct)+len(t.AvgSetSize)+len(t.Mixed))
	for a := range t.Distinct {
		attrs = append(attrs, a)
	}
	for a := range t.AvgSetSize {
		attrs = append(attrs, a)
	}
	attrs = append(attrs, t.Mixed...)
	sort.Strings(attrs)
	return attrs
}

// Histogram reports the equi-depth histogram collected for extent.attr, or
// nil when none was (unknown extent, mixed attribute, empty extent). For a
// scalar attribute it describes the attribute's values; for a set-valued
// attribute, the distribution of the set elements across the extent.
func (d *DBStats) Histogram(extent, attr string) *stats.Histogram {
	t, ok := d.Tables[extent]
	if !ok {
		return nil
	}
	if h, ok := t.Hist[attr]; ok {
		return h
	}
	return t.ElemHist[attr]
}

// IndexKind reports the kind of the secondary index on extent.attr at
// ANALYZE time ("hash" or "ordered"), or "" when the attribute is not
// indexed. The planner uses it to admit index access paths.
func (d *DBStats) IndexKind(extent, attr string) string {
	return d.Tables[extent].Indexes[attr]
}

// Size makes DBStats double as the planner's legacy cardinality feed
// (plan.Stats), so one collected object can drive both the threshold
// fallback and the cost model. An extent that was never analyzed reports -1
// (unknown), not 0: reporting 0 made the threshold fallback treat unknown
// extents as empty and lock in the serial operators no matter how large the
// extent really was. A negative size sends the planner down its no-stats
// path instead.
func (d *DBStats) Size(extent string) int {
	return d.RowCount(extent)
}

// String renders the collected statistics as a small report, one block per
// extent, for cmd/adlbench -analyze and debugging.
func (d *DBStats) String() string {
	names := make([]string, 0, len(d.Tables))
	for n := range d.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		t := d.Tables[n]
		fmt.Fprintf(&b, "%s: %d rows\n", n, t.Rows)
		attrs := d.Attributes(n)
		mixed := map[string]bool{}
		for _, a := range t.Mixed {
			mixed[a] = true
		}
		for _, a := range attrs {
			idx := ""
			if kind, ok := t.Indexes[a]; ok {
				idx = fmt.Sprintf(" [%s index]", kind)
			}
			hist := ""
			if h := d.Histogram(n, a); h != nil {
				hist = fmt.Sprintf(", hist(%d buckets)", len(h.Buckets))
			}
			avg, isSet := t.AvgSetSize[a]
			switch {
			case mixed[a]:
				fmt.Fprintf(&b, "  .%s: mixed scalar/set, statistics unknown%s\n", a, idx)
			case isSet:
				fmt.Fprintf(&b, "  .%s: set-valued, avg %.1f elems%s%s\n", a, avg, hist, idx)
			default:
				fmt.Fprintf(&b, "  .%s: %d distinct%s%s\n", a, t.Distinct[a], hist, idx)
			}
		}
	}
	return b.String()
}

// distinctCounter counts distinct values exactly: values are bucketed by
// hash and disambiguated with Equal, so hash collisions do not inflate the
// count. Each value carries a reference count so deletes can retire a value
// once its last row is gone (remove) — an NDV sketch could not support that.
type distinctCounter struct {
	buckets map[uint64][]*distinctEntry
	n       int
}

type distinctEntry struct {
	v    value.Value
	refs int
}

func newDistinctCounter() *distinctCounter {
	return &distinctCounter{buckets: map[uint64][]*distinctEntry{}}
}

func (c *distinctCounter) add(v value.Value) {
	h := value.Hash(v)
	for _, e := range c.buckets[h] {
		if value.Equal(e.v, v) {
			e.refs++
			return
		}
	}
	c.buckets[h] = append(c.buckets[h], &distinctEntry{v: v, refs: 1})
	c.n++
}

// remove drops one reference to v, retiring the value (and decrementing the
// distinct count) when no row carries it anymore. Removing a value that was
// never added is a no-op: the live state may have been seeded before the row
// being unabsorbed was scanned, and statistics tolerate approximation.
func (c *distinctCounter) remove(v value.Value) {
	h := value.Hash(v)
	for i, e := range c.buckets[h] {
		if value.Equal(e.v, v) {
			e.refs--
			if e.refs <= 0 {
				c.buckets[h] = append(c.buckets[h][:i], c.buckets[h][i+1:]...)
				c.n--
			}
			return
		}
	}
}

// liveTableStats is the mutable per-extent collection state: exact distinct
// counters, live histograms, and set-shape accumulators, updated in place as
// rows arrive. Classification into scalar / set-valued / mixed happens at
// publication time from the accumulators, so the live form never has to
// re-decide anything on the write path. Guarded by Store.statsMu.
type liveTableStats struct {
	rows     int
	counters map[string]*distinctCounter
	hist     map[string]*stats.Histogram // scalar attrs: value distribution
	elemHist map[string]*stats.Histogram // set attrs: pooled element distribution
	elems    map[string]int              // pooled element count per set attr
	setRows  map[string]int              // rows carrying the attr as a set
}

func newLiveTableStats() *liveTableStats {
	return &liveTableStats{
		counters: map[string]*distinctCounter{},
		hist:     map[string]*stats.Histogram{},
		elemHist: map[string]*stats.Histogram{},
		elems:    map[string]int{},
		setRows:  map[string]int{},
	}
}

// absorb folds one row into the live state.
func (lt *liveTableStats) absorb(obj *value.Tuple) {
	lt.rows++
	for i := 0; i < obj.Len(); i++ {
		name, v := obj.At(i)
		if set, ok := v.(*value.Set); ok {
			lt.setRows[name]++
			lt.elems[name] += set.Len()
			h := lt.elemHist[name]
			if h == nil {
				h = &stats.Histogram{}
				lt.elemHist[name] = h
			}
			for _, e := range set.Elems() {
				h.Absorb(e)
			}
			continue
		}
		c := lt.counters[name]
		if c == nil {
			c = newDistinctCounter()
			lt.counters[name] = c
		}
		c.add(v)
		h := lt.hist[name]
		if h == nil {
			h = &stats.Histogram{}
			lt.hist[name] = h
		}
		h.Absorb(v)
	}
}

// unabsorb removes one row from the live state — the inverse of absorb, used
// by Delete and Update.
func (lt *liveTableStats) unabsorb(obj *value.Tuple) {
	if lt.rows > 0 {
		lt.rows--
	}
	for i := 0; i < obj.Len(); i++ {
		name, v := obj.At(i)
		if set, ok := v.(*value.Set); ok {
			if lt.setRows[name] > 0 {
				lt.setRows[name]--
			}
			lt.elems[name] -= set.Len()
			if lt.elems[name] < 0 {
				lt.elems[name] = 0
			}
			if h := lt.elemHist[name]; h != nil {
				for _, e := range set.Elems() {
					h.Unabsorb(e)
				}
			}
			continue
		}
		if c := lt.counters[name]; c != nil {
			c.remove(v)
		}
		if h := lt.hist[name]; h != nil {
			h.Unabsorb(v)
		}
	}
}

// unabsorbStats removes a deleted (or pre-update) row from the live
// statistics. It marks the published stats stale but deliberately does not
// advance sinceEpoch: the insert-driven drift counter stays an insert
// counter, and replanning after heavy deletes is the runtime-feedback loop's
// job (the serving engine compares actual operator cardinalities against
// the cached plan's estimates and advances the epoch itself — see
// AdvanceStatsEpoch). Caller holds the writer lock.
func (s *Store) unabsorbStats(extent string, obj *value.Tuple) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	if lt := s.live[extent]; lt != nil {
		lt.unabsorb(obj)
		s.statsDirty = true
	}
}

// AdvanceStatsEpoch bumps the statistics epoch unconditionally — the hook
// the serving layer's runtime-feedback loop uses when execution proves the
// cached estimates wrong (q-error beyond threshold). Every plan cached at
// an older epoch re-plans on its next use against freshly published
// statistics.
func (s *Store) AdvanceStatsEpoch() {
	s.statsEpoch.Add(1)
}

// absorbStats folds a freshly inserted row into the live statistics (if any
// have been collected) and advances the stats epoch when the extent has
// drifted materially since the last bump. Caller (Insert) holds the writer
// lock; rows is the extent's row count including this row.
func (s *Store) absorbStats(extent string, obj *value.Tuple, rows int) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	if lt := s.live[extent]; lt != nil {
		lt.absorb(obj)
		s.statsDirty = true
	}
	s.sinceEpoch[extent]++
	floor := epochRowFloor
	if frac := int(epochRowFrac * float64(s.rowsAtEpoch[extent])); frac > floor {
		floor = frac
	}
	if s.sinceEpoch[extent] >= floor {
		s.sinceEpoch[extent] = 0
		s.rowsAtEpoch[extent] = rows
		s.statsEpoch.Add(1)
	}
}

// StatsEpoch reports the store's statistics epoch: a counter that advances
// when collected statistics have drifted enough to justify re-planning (see
// the epochRow constants) or when an index is created or replaced. The
// serving layer keys its plan cache on it.
func (s *Store) StatsEpoch() uint64 { return s.statsEpoch.Load() }

// buildLive performs the one full collection scan, populating the live
// per-extent state from the current head version. It reads the raw object
// table rather than Table so collection does not perturb the I/O meters or
// the materialization cache. Caller holds both the writer lock (so no
// insert can land between the scan and the live state becoming absorbable)
// and statsMu.
func (s *Store) buildLive() {
	v := s.head.Load()
	live := map[string]*liveTableStats{}
	for _, ext := range s.cat.Extents() {
		lt := newLiveTableStats()
		vals := map[string][]value.Value{}  // scalar values per attr, all rows
		elems := map[string][]value.Value{} // pooled set elements per attr
		for _, oid := range v.extents[ext] {
			obj, ok := s.objectAt(oid, v.seq)
			if !ok {
				continue
			}
			lt.rows++
			for i := 0; i < obj.Len(); i++ {
				name, av := obj.At(i)
				if set, ok := av.(*value.Set); ok {
					lt.setRows[name]++
					lt.elems[name] += set.Len()
					elems[name] = append(elems[name], set.Elems()...)
					continue
				}
				c := lt.counters[name]
				if c == nil {
					c = newDistinctCounter()
					lt.counters[name] = c
				}
				c.add(av)
				vals[name] = append(vals[name], av)
			}
		}
		// The initial histograms come from the batch equi-depth builder (best
		// bucket boundaries); later rows are absorbed incrementally.
		for name, vs := range vals {
			if h := stats.NewEquiDepth(vs, stats.DefaultBuckets); h != nil {
				lt.hist[name] = h
			}
		}
		for name, vs := range elems {
			if h := stats.NewEquiDepth(vs, stats.DefaultBuckets); h != nil {
				lt.elemHist[name] = h
			}
		}
		live[ext] = lt
	}
	s.live = live
}

// publishStats derives an immutable DBStats from the live state: attributes
// are classified (scalar / set-valued / mixed) from the accumulators and
// histograms are deep-copied, so the published object never changes under a
// planner holding it while inserts keep absorbing. Caller holds statsMu.
func (s *Store) publishStats() *DBStats {
	db := &DBStats{Tables: map[string]TableStats{}, Epoch: s.statsEpoch.Load()}
	for _, ext := range s.cat.Extents() {
		lt := s.live[ext]
		ts := TableStats{
			Rows:       lt.rows,
			Distinct:   map[string]int{},
			AvgSetSize: map[string]float64{},
		}
		mixed := map[string]bool{}
		for name, c := range lt.counters {
			if lt.setRows[name] > 0 {
				// Set-valued in some rows, scalar in others: a Distinct
				// count over just the scalar rows would be an undercount
				// presented as exact. Record the attribute as unknown.
				mixed[name] = true
				continue
			}
			ts.Distinct[name] = c.n
		}
		for name, rows := range lt.setRows {
			if mixed[name] {
				continue
			}
			// Only attributes that are sets in every row count as set-valued;
			// sets in only some rows (absent elsewhere) are unknown too.
			if rows == ts.Rows && rows > 0 {
				ts.AvgSetSize[name] = float64(lt.elems[name]) / float64(rows)
			} else if rows > 0 {
				mixed[name] = true
			}
		}
		for name := range ts.Distinct {
			if h := lt.hist[name]; h != nil && h.Rows > 0 {
				if ts.Hist == nil {
					ts.Hist = map[string]*stats.Histogram{}
				}
				ts.Hist[name] = h.Clone()
			}
		}
		for name := range ts.AvgSetSize {
			if h := lt.elemHist[name]; h != nil && h.Rows > 0 {
				if ts.ElemHist == nil {
					ts.ElemHist = map[string]*stats.Histogram{}
				}
				ts.ElemHist[name] = h.Clone()
			}
		}
		for name := range mixed {
			ts.Mixed = append(ts.Mixed, name)
		}
		sort.Strings(ts.Mixed)
		if idxs := s.IndexedAttrs(ext); len(idxs) > 0 {
			ts.Indexes = map[string]string{}
			for attr, kind := range idxs {
				ts.Indexes[attr] = kind.String()
			}
		}
		db.Tables[ext] = ts
	}
	s.statsCache = db
	s.statsDirty = false
	return db
}

// Analyze returns current database statistics. The first call scans every
// extent and seeds the live collection state; afterwards Insert maintains
// that state incrementally and Analyze merely publishes an immutable copy,
// memoized so repeated calls between mutations return the same *DBStats
// pointer (and the same histograms — the published copy never mutates).
func (s *Store) Analyze() *DBStats {
	s.statsMu.Lock()
	if s.statsCache != nil && !s.statsDirty {
		db := s.statsCache
		s.statsMu.Unlock()
		return db
	}
	if s.live != nil {
		db := s.publishStats()
		s.statsMu.Unlock()
		return db
	}
	s.statsMu.Unlock()
	// First collection: the scan must not race Insert's absorb path — a row
	// published after the scan started but absorbed before s.live existed
	// would be lost forever. Taking the writer lock (same order as Insert:
	// mu, then statsMu) closes that window; the double-check handles a
	// concurrent Analyze that built the live state first.
	s.mu.Lock()
	s.statsMu.Lock()
	if s.live == nil {
		s.buildLive()
	}
	db := s.publishStats()
	s.statsMu.Unlock()
	s.mu.Unlock()
	return db
}
