// ANALYZE-style statistics collection. The paper leaves the choice among
// join strategies to "the optimizer" (§5.1) without saying where its
// knowledge comes from; a modern engine answers with collected statistics.
// Analyze scans every extent once and records, per base table, the row
// count, per-attribute distinct-value counts, and the average cardinality of
// set-valued attributes. The result feeds the cost model in internal/plan,
// which prices the physical join operators and picks the cheapest.
package storage

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// TableStats holds the collected statistics of one extent.
type TableStats struct {
	// Rows is the extent cardinality.
	Rows int
	// Distinct maps a scalar top-level attribute name to its number of
	// distinct values. Set-valued attributes are not counted — hashing whole
	// sets per row is expensive and no consumer prices set NDV; their shape
	// is AvgSetSize.
	Distinct map[string]int
	// AvgSetSize maps each set-valued attribute to the mean cardinality of
	// its sets across the extent.
	AvgSetSize map[string]float64
}

// DBStats is the database-wide result of Analyze: extent name → TableStats.
// It implements the plan package's Statistics interface.
type DBStats struct {
	Tables map[string]TableStats
}

// RowCount reports the collected cardinality of an extent, or -1 if the
// extent was not analyzed.
func (d *DBStats) RowCount(extent string) int {
	t, ok := d.Tables[extent]
	if !ok {
		return -1
	}
	return t.Rows
}

// DistinctValues reports the collected distinct-value count of an attribute,
// or 0 if unknown.
func (d *DBStats) DistinctValues(extent, attr string) int {
	return d.Tables[extent].Distinct[attr]
}

// AvgSetSize reports the mean cardinality of a set-valued attribute, or 0 if
// the attribute is not set-valued or was not analyzed.
func (d *DBStats) AvgSetSize(extent, attr string) float64 {
	return d.Tables[extent].AvgSetSize[attr]
}

// Attributes lists an extent's collected top-level attribute names (scalar
// and set-valued), sorted, or nil if the extent was not analyzed. The
// planner's join-order enumerator uses it to resolve which base relation a
// predicate over concatenated join tuples refers to.
func (d *DBStats) Attributes(extent string) []string {
	t, ok := d.Tables[extent]
	if !ok {
		return nil
	}
	attrs := make([]string, 0, len(t.Distinct)+len(t.AvgSetSize))
	for a := range t.Distinct {
		attrs = append(attrs, a)
	}
	for a := range t.AvgSetSize {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	return attrs
}

// Size makes DBStats double as the planner's legacy cardinality feed
// (plan.Stats), so one collected object can drive both the threshold
// fallback and the cost model.
func (d *DBStats) Size(extent string) int {
	if n := d.RowCount(extent); n >= 0 {
		return n
	}
	return 0
}

// String renders the collected statistics as a small report, one block per
// extent, for cmd/adlbench -analyze and debugging.
func (d *DBStats) String() string {
	names := make([]string, 0, len(d.Tables))
	for n := range d.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		t := d.Tables[n]
		fmt.Fprintf(&b, "%s: %d rows\n", n, t.Rows)
		attrs := make([]string, 0, len(t.Distinct)+len(t.AvgSetSize))
		for a := range t.Distinct {
			attrs = append(attrs, a)
		}
		for a := range t.AvgSetSize {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		for _, a := range attrs {
			if avg, ok := t.AvgSetSize[a]; ok {
				fmt.Fprintf(&b, "  .%s: set-valued, avg %.1f elems\n", a, avg)
				continue
			}
			fmt.Fprintf(&b, "  .%s: %d distinct\n", a, t.Distinct[a])
		}
	}
	return b.String()
}

// distinctCounter counts distinct values exactly: values are bucketed by
// hash and disambiguated with Equal, so hash collisions do not inflate the
// count.
type distinctCounter struct {
	buckets map[uint64][]value.Value
	n       int
}

func newDistinctCounter() *distinctCounter {
	return &distinctCounter{buckets: map[uint64][]value.Value{}}
}

func (c *distinctCounter) add(v value.Value) {
	h := value.Hash(v)
	for _, seen := range c.buckets[h] {
		if value.Equal(seen, v) {
			return
		}
	}
	c.buckets[h] = append(c.buckets[h], v)
	c.n++
}

// Analyze scans every extent of the store and collects statistics. It uses
// the raw object map rather than Table so collection does not perturb the
// I/O meters or the extent cache.
func (s *Store) Analyze() *DBStats {
	db := &DBStats{Tables: map[string]TableStats{}}
	for _, ext := range s.cat.Extents() {
		oids := s.extents[ext]
		ts := TableStats{
			Rows:       len(oids),
			Distinct:   map[string]int{},
			AvgSetSize: map[string]float64{},
		}
		counters := map[string]*distinctCounter{}
		setElems := map[string]int{} // total elements per set-valued attr
		setRows := map[string]int{}  // rows carrying that attr
		for _, oid := range oids {
			obj := s.objects[oid]
			for i := 0; i < obj.Len(); i++ {
				name, v := obj.At(i)
				if set, ok := v.(*value.Set); ok {
					setElems[name] += set.Len()
					setRows[name]++
					continue
				}
				c, ok := counters[name]
				if !ok {
					c = newDistinctCounter()
					counters[name] = c
				}
				c.add(v)
			}
		}
		for name, c := range counters {
			ts.Distinct[name] = c.n
		}
		for name, rows := range setRows {
			// Only attributes that are sets in every row count as set-valued.
			if rows == ts.Rows && rows > 0 {
				ts.AvgSetSize[name] = float64(setElems[name]) / float64(rows)
			}
		}
		db.Tables[ext] = ts
	}
	return db
}
