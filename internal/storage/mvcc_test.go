package storage

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/value"
)

func insertPart(t testing.TB, s *Store, name, color string, price int64) value.OID {
	t.Helper()
	oid, err := s.Insert("PART", value.NewTuple(
		"pname", value.String(name), "price", value.Int(price), "color", value.String(color)))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	return oid
}

func TestSnapshotIsolation(t *testing.T) {
	s := newStore(t)
	insertPart(t, s, "bolt", "red", 10)
	insertPart(t, s, "nut", "blue", 5)

	old := s.Snapshot()
	oid3 := insertPart(t, s, "washer", "red", 1)

	if got := old.Size("PART"); got != 2 {
		t.Fatalf("pinned snapshot Size = %d, want 2", got)
	}
	set, err := old.Table("PART")
	if err != nil {
		t.Fatalf("Table: %v", err)
	}
	if set.Len() != 2 {
		t.Fatalf("pinned snapshot Table has %d rows, want 2", set.Len())
	}
	if _, ok := old.Lookup(oid3); ok {
		t.Fatalf("pinned snapshot must not see oid published after the pin")
	}
	if _, err := old.Deref(oid3); err == nil {
		t.Fatalf("Deref of a later oid must fail on the old snapshot")
	}

	fresh := s.Snapshot()
	if got := fresh.Size("PART"); got != 3 {
		t.Fatalf("fresh snapshot Size = %d, want 3", got)
	}
	if fresh.Seq() <= old.Seq() {
		t.Fatalf("seq must advance: old %d, fresh %d", old.Seq(), fresh.Seq())
	}
	// The old pin still answers the same after more activity.
	insertPart(t, s, "pin", "green", 7)
	if got := old.Size("PART"); got != 2 {
		t.Fatalf("pinned snapshot drifted to %d rows", got)
	}
}

func TestSnapshotIndexVisibility(t *testing.T) {
	s := newStore(t)
	insertPart(t, s, "bolt", "red", 10)
	if err := s.CreateIndex("PART", "color", HashIndex); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	old := s.Snapshot()
	insertPart(t, s, "washer", "red", 1)

	rows, err := old.IndexLookup("PART", "color", value.String("red"))
	if err != nil {
		t.Fatalf("IndexLookup: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("pinned snapshot index probe returned %d rows, want 1", len(rows))
	}
	rows, err = s.Snapshot().IndexLookup("PART", "color", value.String("red"))
	if err != nil {
		t.Fatalf("IndexLookup: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("fresh snapshot index probe returned %d rows, want 2 (incremental absorb)", len(rows))
	}
}

// TestSaveLoadUnderConcurrentReaders pins snapshots, then hammers the store
// with concurrent inserts, old-version scans, and a SaveJSON dump, and
// finally round-trips the dump through LoadJSON. Under -race this is the
// serving layer's core claim: readers of older extent versions stay
// consistent (and data races absent) while writers publish new ones.
func TestSaveLoadUnderConcurrentReaders(t *testing.T) {
	s := newStore(t)
	for i := 0; i < 50; i++ {
		insertPart(t, s, fmt.Sprintf("seed-%d", i), "red", int64(i%20+1))
	}
	old := s.Snapshot()
	oldSize := old.Size("PART")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writer: keeps publishing new versions
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			insertPart(t, s, fmt.Sprintf("w-%d", i), "blue", int64(i%30+1))
		}
	}()
	readerErr := make(chan error, 4)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() { // readers: scan the pinned old version repeatedly
			defer wg.Done()
			for i := 0; i < 200; i++ {
				set, err := old.Table("PART")
				if err != nil {
					readerErr <- err
					return
				}
				if set.Len() != oldSize {
					readerErr <- fmt.Errorf("pinned scan saw %d rows, want %d", set.Len(), oldSize)
					return
				}
			}
		}()
	}

	var dump bytes.Buffer
	if err := s.SaveJSON(&dump); err != nil {
		t.Fatalf("SaveJSON under writes: %v", err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-readerErr:
		t.Fatal(err)
	default:
	}

	// Round-trip: the dump loads, re-saves byte-identically (the dump is a
	// deterministic function of the pinned save-time version), and the
	// loaded store accepts further inserts past the preserved oids.
	loaded, err := LoadJSON(s.Catalog(), bytes.NewReader(dump.Bytes()))
	if err != nil {
		t.Fatalf("LoadJSON: %v", err)
	}
	if got := loaded.Size("PART"); got < oldSize {
		t.Fatalf("loaded store has %d PART rows, want at least the %d at pin time", got, oldSize)
	}
	var dump2 bytes.Buffer
	if err := loaded.SaveJSON(&dump2); err != nil {
		t.Fatalf("re-save: %v", err)
	}
	if !bytes.Equal(dump.Bytes(), dump2.Bytes()) {
		t.Fatalf("save/load/save is not a fixed point: %d vs %d bytes", dump.Len(), dump2.Len())
	}
	before := loaded.Size("PART")
	insertPart(t, loaded, "post-load", "green", 3)
	if got := loaded.Size("PART"); got != before+1 {
		t.Fatalf("insert after load: size %d, want %d", got, before+1)
	}
}

func TestStatsEpochDrift(t *testing.T) {
	s := newStore(t)
	insertPart(t, s, "seed", "red", 1)
	base := s.StatsEpoch()

	// A single insert is below the drift floor: no bump.
	insertPart(t, s, "one", "red", 2)
	if got := s.StatsEpoch(); got != base {
		t.Fatalf("epoch bumped after one insert: %d → %d", base, got)
	}
	// CreateIndex always bumps — a new access path changes plan choice.
	if err := s.CreateIndex("PART", "color", HashIndex); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	afterIdx := s.StatsEpoch()
	if afterIdx == base {
		t.Fatalf("epoch must bump on CreateIndex")
	}
	// Crossing the row-drift floor bumps.
	for i := 0; i < 2*epochRowFloor; i++ {
		insertPart(t, s, fmt.Sprintf("bulk-%d", i), "blue", int64(i%9+1))
	}
	if got := s.StatsEpoch(); got <= afterIdx {
		t.Fatalf("epoch must bump after %d inserts: %d → %d", 2*epochRowFloor, afterIdx, got)
	}
}

func TestSnapshotStatsReflectIncrementalAbsorb(t *testing.T) {
	s := newStore(t)
	insertPart(t, s, "a", "red", 10)
	insertPart(t, s, "b", "blue", 20)
	first := s.Analyze()
	if got := first.RowCount("PART"); got != 2 {
		t.Fatalf("RowCount = %d, want 2", got)
	}
	// The live state absorbs without a re-scan; the published copy is new
	// and correct, and the first publication is untouched.
	insertPart(t, s, "c", "red", 30)
	second := s.Analyze()
	if second == first {
		t.Fatalf("Analyze must republish after an insert")
	}
	if got := second.RowCount("PART"); got != 3 {
		t.Fatalf("RowCount after absorb = %d, want 3", got)
	}
	if got := second.DistinctValues("PART", "color"); got != 2 {
		t.Fatalf("Distinct(color) = %d, want 2", got)
	}
	if got := second.DistinctValues("PART", "price"); got != 3 {
		t.Fatalf("Distinct(price) = %d, want 3", got)
	}
	if got := first.RowCount("PART"); got != 2 {
		t.Fatalf("published stats mutated in place: RowCount = %d, want 2", got)
	}
}
