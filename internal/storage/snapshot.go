package storage

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/schema"
	"repro/internal/value"
)

// persisted is the on-disk form of a store: per extent, the live objects in
// insertion order with their oids preserved, plus the oids of deleted
// objects (per extent) and the allocation horizon. Tombstones and NextOID
// round-trip so a loaded store never re-allocates a dead object's oid —
// reusing one would silently re-point any reference-valued attribute that
// still carries it. Both fields are optional: dumps from before deletes
// existed load fine.
type persisted struct {
	Extents    map[string][]json.RawMessage `json:"extents"`
	Tombstones map[string][]value.OID       `json:"tombstones,omitempty"`
	NextOID    value.OID                    `json:"next_oid,omitempty"`
}

// SaveJSON writes the store's contents (all extents, objects with their
// oids, tombstones of deleted objects) as JSON. The schema itself is not
// serialized: a snapshot is loaded against the same catalog it was taken
// under. The dump is taken against a pinned version, so saving is safe (and
// consistent) while concurrent writes keep landing: rows published after
// the pin are not written, rows deleted after it still are.
func (s *Store) SaveJSON(w io.Writer) error {
	sn := s.Snapshot()
	defer sn.Release()
	snap := persisted{Extents: map[string][]json.RawMessage{}, NextOID: sn.v.nextOID}
	exts := make([]string, 0, len(sn.v.extents))
	for ext := range sn.v.extents {
		exts = append(exts, ext)
	}
	sort.Strings(exts)
	for _, ext := range exts {
		for _, oid := range sn.v.extents[ext] {
			obj, ok := s.objectAt(oid, sn.v.seq)
			if !ok {
				return fmt.Errorf("storage: save %s: dangling oid %v", ext, oid)
			}
			enc, err := value.EncodeJSON(obj)
			if err != nil {
				return fmt.Errorf("storage: save %s: %w", ext, err)
			}
			snap.Extents[ext] = append(snap.Extents[ext], enc)
		}
	}
	// Objects dead at the pinned version are persisted as tombstones. Chains
	// only ever grow under the writer lock, so the walk is race-free enough:
	// an object deleted after the pin resolves to its live state above and is
	// saved as data, not as a tombstone.
	s.objects.Range(func(k, v any) bool {
		if n := v.(*objVersion).at(sn.v.seq); n != nil && n.obj == nil {
			if snap.Tombstones == nil {
				snap.Tombstones = map[string][]value.OID{}
			}
			snap.Tombstones[n.extent] = append(snap.Tombstones[n.extent], k.(value.OID))
		}
		return true
	})
	for _, oids := range snap.Tombstones {
		sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	}
	e := json.NewEncoder(w)
	e.SetIndent("", " ")
	return e.Encode(snap)
}

// LoadJSON reads a snapshot into a fresh store over the given catalog.
// Object identity is preserved: oids in the snapshot are kept, tombstoned
// oids stay dead (dereferencing one fails like any dangling oid), and the
// store's allocator continues past the persisted horizon — never reusing a
// dead oid. The loaded state is published as a single version, so the store
// serves reads (and accepts concurrent writes) the moment LoadJSON returns.
func LoadJSON(cat *schema.Catalog, r io.Reader) (*Store, error) {
	var snap persisted
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("storage: load: %w", err)
	}
	st := New(cat)
	var maxOID value.OID
	extents := map[string][]value.OID{}
	exts := make([]string, 0, len(snap.Extents))
	for ext := range snap.Extents {
		exts = append(exts, ext)
	}
	sort.Strings(exts)
	for _, ext := range exts {
		cl, ok := cat.ByExtent(ext)
		if !ok {
			return nil, fmt.Errorf("storage: load: unknown extent %q", ext)
		}
		for _, raw := range snap.Extents[ext] {
			v, err := value.DecodeJSON(raw)
			if err != nil {
				return nil, fmt.Errorf("storage: load %s: %w", ext, err)
			}
			obj, ok := v.(*value.Tuple)
			if !ok {
				return nil, fmt.Errorf("storage: load %s: object is %s, not a tuple", ext, v.Kind())
			}
			idv, ok := obj.Get(cl.IDField)
			if !ok {
				return nil, fmt.Errorf("storage: load %s: object lacks id field %q", ext, cl.IDField)
			}
			oid, ok := idv.(value.OID)
			if !ok {
				return nil, fmt.Errorf("storage: load %s: id field %q is not an oid", ext, cl.IDField)
			}
			if _, dup := st.objects.Load(oid); dup {
				return nil, fmt.Errorf("storage: load: duplicate oid %v", oid)
			}
			st.objects.Store(oid, &objVersion{extent: ext, obj: obj, born: 1})
			extents[ext] = append(extents[ext], oid)
			if oid > maxOID {
				maxOID = oid
			}
		}
	}
	for ext, oids := range snap.Tombstones {
		if _, ok := cat.ByExtent(ext); !ok {
			return nil, fmt.Errorf("storage: load: unknown tombstone extent %q", ext)
		}
		for _, oid := range oids {
			if _, dup := st.objects.Load(oid); dup {
				return nil, fmt.Errorf("storage: load: oid %v is both live and tombstoned", oid)
			}
			st.objects.Store(oid, &objVersion{extent: ext, born: 1})
			if oid > maxOID {
				maxOID = oid
			}
		}
	}
	next := maxOID + 1
	if snap.NextOID > next {
		next = snap.NextOID
	}
	st.head.Store(&version{seq: 1, nextOID: next, extents: extents})
	return st, nil
}
