package storage

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/schema"
	"repro/internal/value"
)

// snapshot is the on-disk form of a store: per extent, the objects in
// insertion order with their oids preserved.
type snapshot struct {
	Extents map[string][]json.RawMessage `json:"extents"`
}

// SaveJSON writes the store's contents (all extents, objects with their
// oids) as JSON. The schema itself is not serialized: a snapshot is loaded
// against the same catalog it was taken under.
func (s *Store) SaveJSON(w io.Writer) error {
	snap := snapshot{Extents: map[string][]json.RawMessage{}}
	exts := make([]string, 0, len(s.extents))
	for ext := range s.extents {
		exts = append(exts, ext)
	}
	sort.Strings(exts)
	for _, ext := range exts {
		for _, oid := range s.extents[ext] {
			enc, err := value.EncodeJSON(s.objects[oid])
			if err != nil {
				return fmt.Errorf("storage: save %s: %w", ext, err)
			}
			snap.Extents[ext] = append(snap.Extents[ext], enc)
		}
	}
	e := json.NewEncoder(w)
	e.SetIndent("", " ")
	return e.Encode(snap)
}

// LoadJSON reads a snapshot into a fresh store over the given catalog.
// Object identity is preserved: oids in the snapshot are kept, and the
// store's allocator continues past the highest one.
func LoadJSON(cat *schema.Catalog, r io.Reader) (*Store, error) {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("storage: load: %w", err)
	}
	st := New(cat)
	var maxOID value.OID
	exts := make([]string, 0, len(snap.Extents))
	for ext := range snap.Extents {
		exts = append(exts, ext)
	}
	sort.Strings(exts)
	for _, ext := range exts {
		cl, ok := cat.ByExtent(ext)
		if !ok {
			return nil, fmt.Errorf("storage: load: unknown extent %q", ext)
		}
		for _, raw := range snap.Extents[ext] {
			v, err := value.DecodeJSON(raw)
			if err != nil {
				return nil, fmt.Errorf("storage: load %s: %w", ext, err)
			}
			obj, ok := v.(*value.Tuple)
			if !ok {
				return nil, fmt.Errorf("storage: load %s: object is %s, not a tuple", ext, v.Kind())
			}
			idv, ok := obj.Get(cl.IDField)
			if !ok {
				return nil, fmt.Errorf("storage: load %s: object lacks id field %q", ext, cl.IDField)
			}
			oid, ok := idv.(value.OID)
			if !ok {
				return nil, fmt.Errorf("storage: load %s: id field %q is not an oid", ext, cl.IDField)
			}
			if _, dup := st.objects[oid]; dup {
				return nil, fmt.Errorf("storage: load: duplicate oid %v", oid)
			}
			st.objects[oid] = obj
			st.extents[ext] = append(st.extents[ext], oid)
			if oid > maxOID {
				maxOID = oid
			}
		}
	}
	st.nextOID = maxOID + 1
	return st, nil
}
