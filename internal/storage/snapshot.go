package storage

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/schema"
	"repro/internal/value"
)

// persisted is the on-disk form of a store: per extent, the objects in
// insertion order with their oids preserved.
type persisted struct {
	Extents map[string][]json.RawMessage `json:"extents"`
}

// SaveJSON writes the store's contents (all extents, objects with their
// oids) as JSON. The schema itself is not serialized: a snapshot is loaded
// against the same catalog it was taken under. The dump is taken against a
// pinned version, so saving is safe (and consistent) while concurrent
// inserts keep landing: rows published after the pin are not written.
func (s *Store) SaveJSON(w io.Writer) error {
	sn := s.Snapshot()
	snap := persisted{Extents: map[string][]json.RawMessage{}}
	exts := make([]string, 0, len(sn.v.extents))
	for ext := range sn.v.extents {
		exts = append(exts, ext)
	}
	sort.Strings(exts)
	for _, ext := range exts {
		for _, oid := range sn.v.extents[ext] {
			obj, ok := s.object(oid)
			if !ok {
				return fmt.Errorf("storage: save %s: dangling oid %v", ext, oid)
			}
			enc, err := value.EncodeJSON(obj)
			if err != nil {
				return fmt.Errorf("storage: save %s: %w", ext, err)
			}
			snap.Extents[ext] = append(snap.Extents[ext], enc)
		}
	}
	e := json.NewEncoder(w)
	e.SetIndent("", " ")
	return e.Encode(snap)
}

// LoadJSON reads a snapshot into a fresh store over the given catalog.
// Object identity is preserved: oids in the snapshot are kept, and the
// store's allocator continues past the highest one. The loaded state is
// published as a single version, so the store serves reads (and accepts
// concurrent inserts) the moment LoadJSON returns.
func LoadJSON(cat *schema.Catalog, r io.Reader) (*Store, error) {
	var snap persisted
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("storage: load: %w", err)
	}
	st := New(cat)
	var maxOID value.OID
	extents := map[string][]value.OID{}
	exts := make([]string, 0, len(snap.Extents))
	for ext := range snap.Extents {
		exts = append(exts, ext)
	}
	sort.Strings(exts)
	for _, ext := range exts {
		cl, ok := cat.ByExtent(ext)
		if !ok {
			return nil, fmt.Errorf("storage: load: unknown extent %q", ext)
		}
		for _, raw := range snap.Extents[ext] {
			v, err := value.DecodeJSON(raw)
			if err != nil {
				return nil, fmt.Errorf("storage: load %s: %w", ext, err)
			}
			obj, ok := v.(*value.Tuple)
			if !ok {
				return nil, fmt.Errorf("storage: load %s: object is %s, not a tuple", ext, v.Kind())
			}
			idv, ok := obj.Get(cl.IDField)
			if !ok {
				return nil, fmt.Errorf("storage: load %s: object lacks id field %q", ext, cl.IDField)
			}
			oid, ok := idv.(value.OID)
			if !ok {
				return nil, fmt.Errorf("storage: load %s: id field %q is not an oid", ext, cl.IDField)
			}
			if _, dup := st.objects.Load(oid); dup {
				return nil, fmt.Errorf("storage: load: duplicate oid %v", oid)
			}
			st.objects.Store(oid, obj)
			extents[ext] = append(extents[ext], oid)
			if oid > maxOID {
				maxOID = oid
			}
		}
	}
	st.head.Store(&version{seq: 1, nextOID: maxOID + 1, extents: extents})
	return st, nil
}
