// Package storage provides the in-memory object store that stands in for the
// disk-based OODB kernel assumed by the paper. Objects are complex tuples
// addressed by oid; each class extension ("base table") is the set of its
// objects, with set-valued attributes stored clustered with their owner (the
// paper's storage assumption in §3, which is what makes unnesting set-valued
// attributes undesirable).
//
// Substitution note (see DESIGN.md §2): the paper's cost arguments concern
// tuple- versus set-oriented algorithms on a paged store. We model pages as
// fixed-size groups of objects and meter object fetches and distinct page
// touches, so that benchmarks can report an I/O-shaped metric alongside wall
// time without simulating a 1994 disk.
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/schema"
	"repro/internal/value"
)

// DefaultObjectsPerPage is the default clustering factor of the page model.
const DefaultObjectsPerPage = 32

// Stats counts logical I/O since the last Reset.
type Stats struct {
	// ObjectReads counts individual object fetches by oid.
	ObjectReads int
	// PageReads counts page touches, where consecutive touches of the same
	// page as the previous fetch are free (sequential locality), modelling a
	// one-page buffer. A whole-extent scan (Table) counts one touch per page
	// of the extent — the meter models the logical I/O of the access path,
	// not the Go-level extent cache.
	PageReads int
	// ExtentScans counts whole-extent scans.
	ExtentScans int
	// IndexProbes counts secondary-index probes (equality or range); the
	// objects each probe fetches are metered as ObjectReads/PageReads.
	IndexProbes int
}

// Store is an object store plus extents. Loads, inserts and schema tuning
// are single-threaded (a store is populated before queries run), but reads —
// Lookup, Deref, Table, Size — are safe for concurrent use by the parallel
// execution operators: the I/O meters are atomic and the extent cache is
// guarded by a lock.
type Store struct {
	cat     *schema.Catalog
	nextOID value.OID
	objects map[value.OID]*value.Tuple
	extents map[string][]value.OID
	// extentCache holds materialized extent sets; invalidated on insert.
	extentCache map[string]*value.Set
	// statsCache memoizes the last Analyze result (analyze.go); invalidated
	// on insert and on index registration, rebuilt by the next Analyze.
	statsCache *DBStats
	cacheMu    sync.RWMutex

	// indexes is the secondary-index registry (index.go): extent → attr →
	// index. Probes take idxMu for reading; Insert invalidates and the next
	// probe rebuilds under the write lock.
	indexes map[string]map[string]*extIndex
	idxMu   sync.RWMutex

	objectsPerPage int
	lastPage       atomic.Int64
	objectReads    atomic.Int64
	pageReads      atomic.Int64
	extentScans    atomic.Int64
	indexProbes    atomic.Int64
}

// New creates an empty store for the given catalog.
func New(cat *schema.Catalog) *Store {
	s := &Store{
		cat:            cat,
		nextOID:        1,
		objects:        map[value.OID]*value.Tuple{},
		extents:        map[string][]value.OID{},
		extentCache:    map[string]*value.Set{},
		objectsPerPage: DefaultObjectsPerPage,
	}
	s.lastPage.Store(-1)
	return s
}

// SetObjectsPerPage tunes the page model clustering factor.
func (s *Store) SetObjectsPerPage(n int) {
	if n < 1 {
		n = 1
	}
	s.objectsPerPage = n
}

// Catalog returns the schema catalog the store was created with.
func (s *Store) Catalog() *schema.Catalog { return s.cat }

// Insert stores an object in the named extent. The tuple must not already
// carry the class's id field; Insert allocates a fresh oid, prepends the id
// field, and returns the oid. Attribute completeness is not enforced here —
// the typechecker validates query/schema agreement — but extent existence is.
func (s *Store) Insert(extent string, t *value.Tuple) (value.OID, error) {
	cl, ok := s.cat.ByExtent(extent)
	if !ok {
		return 0, fmt.Errorf("storage: unknown extent %q", extent)
	}
	if t.Has(cl.IDField) {
		return 0, fmt.Errorf("storage: object for %q already has id field %q", extent, cl.IDField)
	}
	oid := s.nextOID
	s.nextOID++
	obj := value.NewTuple(cl.IDField, oid).Except(t)
	s.objects[oid] = obj
	s.extents[extent] = append(s.extents[extent], oid)
	s.cacheMu.Lock()
	delete(s.extentCache, extent)
	s.statsCache = nil
	s.cacheMu.Unlock()
	s.invalidateIndexes(extent)
	return oid, nil
}

// Lookup fetches an object by oid, metering the access. The page meter
// models a single one-page buffer: under serial execution the counts are
// exact; under parallel execution concurrent fetches share that one buffer,
// so PageReads is an upper bound (interleaved goroutines evict each other's
// page) — compare page counts across serial runs only. The load-then-store
// (rather than an unconditional swap) keeps the sequential-locality hot path
// free of contended writes.
func (s *Store) Lookup(oid value.OID) (*value.Tuple, bool) {
	obj, ok := s.objects[oid]
	if ok {
		s.objectReads.Add(1)
		page := int64(uint64(oid)) / int64(s.objectsPerPage)
		if s.lastPage.Load() != page {
			s.pageReads.Add(1)
			s.lastPage.Store(page)
		}
	}
	return obj, ok
}

// Deref implements pointer dereferencing for the evaluator: it is Lookup
// without the comma-ok, failing loudly on dangling oids.
func (s *Store) Deref(oid value.OID) (*value.Tuple, error) {
	obj, ok := s.Lookup(oid)
	if !ok {
		return nil, fmt.Errorf("storage: dangling oid %v", oid)
	}
	return obj, nil
}

// Table returns the extent as a set of tuples. The set is cached; callers
// must treat it as immutable.
func (s *Store) Table(name string) (*value.Set, error) {
	s.cacheMu.RLock()
	cached, ok := s.extentCache[name]
	s.cacheMu.RUnlock()
	if ok {
		s.meterScan(name)
		return cached, nil
	}
	oids, ok := s.extents[name]
	if !ok {
		if _, known := s.cat.ByExtent(name); !known {
			return nil, fmt.Errorf("storage: unknown base table %q", name)
		}
		oids = nil
	}
	set := value.NewSetCap(len(oids))
	for _, oid := range oids {
		set.Add(s.objects[oid])
	}
	s.cacheMu.Lock()
	s.extentCache[name] = set
	s.cacheMu.Unlock()
	s.meterScan(name)
	return set, nil
}

// meterScan charges one whole-extent scan: the scan counter plus one page
// touch per page of the extent — charged even when the materialized set is
// cached, because the meter models the access path's logical I/O, not the
// Go-level memoization. The sweep also evicts the one-page lookup buffer.
func (s *Store) meterScan(name string) {
	s.extentScans.Add(1)
	if n := len(s.extents[name]); n > 0 {
		s.pageReads.Add(int64((n + s.objectsPerPage - 1) / s.objectsPerPage))
	}
	s.lastPage.Store(-1)
}

// OIDs returns the oids of an extent in insertion order.
func (s *Store) OIDs(extent string) []value.OID {
	return append([]value.OID(nil), s.extents[extent]...)
}

// Size reports the number of objects in an extent.
func (s *Store) Size(extent string) int { return len(s.extents[extent]) }

// Stats returns the I/O counters accumulated since the last ResetStats.
func (s *Store) Stats() Stats {
	return Stats{
		ObjectReads: int(s.objectReads.Load()),
		PageReads:   int(s.pageReads.Load()),
		ExtentScans: int(s.extentScans.Load()),
		IndexProbes: int(s.indexProbes.Load()),
	}
}

// ResetStats clears the I/O counters.
func (s *Store) ResetStats() {
	s.objectReads.Store(0)
	s.pageReads.Store(0)
	s.extentScans.Store(0)
	s.indexProbes.Store(0)
	s.lastPage.Store(-1)
}

// MemDB is a trivial table provider for tests and paper figures: named
// in-memory sets with no schema, no oids and no metering.
type MemDB struct {
	Tables map[string]*value.Set
	Objs   map[value.OID]*value.Tuple
}

// NewMemDB builds a MemDB from alternating name/*value.Set pairs.
func NewMemDB(pairs ...any) *MemDB {
	db := &MemDB{Tables: map[string]*value.Set{}, Objs: map[value.OID]*value.Tuple{}}
	for i := 0; i < len(pairs); i += 2 {
		db.Tables[pairs[i].(string)] = pairs[i+1].(*value.Set)
	}
	return db
}

// Table returns the named table.
func (db *MemDB) Table(name string) (*value.Set, error) {
	t, ok := db.Tables[name]
	if !ok {
		return nil, fmt.Errorf("storage: unknown base table %q", name)
	}
	return t, nil
}

// Deref resolves an oid if the MemDB carries objects.
func (db *MemDB) Deref(oid value.OID) (*value.Tuple, error) {
	if t, ok := db.Objs[oid]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("storage: dangling oid %v", oid)
}

// TableNames lists the tables, sorted, for diagnostics.
func (db *MemDB) TableNames() []string {
	out := make([]string, 0, len(db.Tables))
	for n := range db.Tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
