// Package storage provides the in-memory object store that stands in for the
// disk-based OODB kernel assumed by the paper. Objects are complex tuples
// addressed by oid; each class extension ("base table") is the set of its
// objects, with set-valued attributes stored clustered with their owner (the
// paper's storage assumption in §3, which is what makes unnesting set-valued
// attributes undesirable).
//
// Substitution note (see DESIGN.md §2): the paper's cost arguments concern
// tuple- versus set-oriented algorithms on a paged store. We model pages as
// fixed-size groups of objects and meter object fetches and distinct page
// touches, so that benchmarks can report an I/O-shaped metric alongside wall
// time without simulating a 1994 disk.
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/schema"
	"repro/internal/value"
)

// DefaultObjectsPerPage is the default clustering factor of the page model.
const DefaultObjectsPerPage = 32

// DefaultGCEvery is the default auto-GC trigger: a garbage collection runs
// after this many deletes/updates since the last one. See SetAutoGC.
const DefaultGCEvery = 1024

// Stats counts logical I/O since the last Reset.
type Stats struct {
	// ObjectReads counts individual object fetches by oid.
	ObjectReads int
	// PageReads counts page touches, where consecutive touches of the same
	// page as the previous fetch are free (sequential locality), modelling a
	// one-page buffer. A whole-extent scan (Table) counts one touch per page
	// of the extent — the meter models the logical I/O of the access path,
	// not the Go-level extent cache.
	PageReads int
	// ExtentScans counts whole-extent scans.
	ExtentScans int
	// IndexProbes counts secondary-index probes (equality or range); the
	// objects each probe fetches are metered as ObjectReads/PageReads.
	IndexProbes int
}

// Store is an object store plus extents, serving concurrent reads under
// writes: every Insert/Delete/Update publishes a new immutable version
// (version.go) and readers either pin one (Snapshot) or follow the latest
// via the Store's own DB methods. Writes are serialized by an internal
// writer lock but never block in-flight readers; indexes and collected
// statistics are maintained incrementally per write instead of being
// invalidated and rebuilt. All methods are safe for concurrent use.
type Store struct {
	cat *schema.Catalog

	// mu is the writer lock: Insert, Delete, Update, CreateIndex, GC and the
	// first Analyze scan hold it. Readers never take it.
	mu   sync.Mutex
	head atomic.Pointer[version]
	// objects maps oid → *objVersion, the head of the object's version
	// chain. Entries are only removed by GC, and only once no pinned
	// snapshot can reach any state of the object.
	objects sync.Map

	// pins counts live snapshots per pinned seq; the minimum pinned seq is
	// the GC horizon (gc.go).
	pinMu sync.Mutex
	pins  map[uint64]int
	// mutations counts deletes/updates since the last GC; gcEvery is the
	// auto-GC trigger threshold (0 disables).
	mutations int
	gcEvery   int

	// mat caches the latest materialized set per extent; older versions
	// rebuild from their oid lists, newer versions clone-and-extend
	// (materialize).
	matMu sync.Mutex
	mat   map[string]matEntry

	// colProjs caches the latest columnar projection per extent for the
	// batch executor (colproj.go).
	colMu    sync.Mutex
	colProjs map[string]colEntry

	// indexes is the secondary-index registry (index.go): extent → attr →
	// index. Probes take idxMu for reading; writes absorb under the writer
	// lock.
	indexes map[string]map[string]*extIndex
	idxMu   sync.RWMutex

	// Incremental ANALYZE state (analyze.go): live per-extent statistics
	// updated in place on Insert/Delete/Update, the memoized published
	// DBStats, and the stats epoch the plan cache keys on.
	statsMu     sync.Mutex
	live        map[string]*liveTableStats
	statsCache  *DBStats
	statsDirty  bool
	sinceEpoch  map[string]int
	rowsAtEpoch map[string]int
	statsEpoch  atomic.Uint64

	objectsPerPage int
	lastPage       atomic.Int64
	objectReads    atomic.Int64
	pageReads      atomic.Int64
	extentScans    atomic.Int64
	indexProbes    atomic.Int64
}

// matEntry is one cached extent materialization: the set over exactly the
// oid list it was built from, identified by length plus backing array (an
// insert extends the shared backing; a delete or update replaces it), and
// stamped with the version seq it was materialized at so a stale request
// never replaces a fresher entry.
type matEntry struct {
	seq  uint64
	oids []value.OID
	set  *value.Set
}

// New creates an empty store for the given catalog.
func New(cat *schema.Catalog) *Store {
	s := &Store{
		cat:            cat,
		mat:            map[string]matEntry{},
		colProjs:       map[string]colEntry{},
		pins:           map[uint64]int{},
		gcEvery:        DefaultGCEvery,
		sinceEpoch:     map[string]int{},
		rowsAtEpoch:    map[string]int{},
		objectsPerPage: DefaultObjectsPerPage,
	}
	s.head.Store(&version{nextOID: 1, extents: map[string][]value.OID{}})
	s.lastPage.Store(-1)
	return s
}

// SetObjectsPerPage tunes the page model clustering factor. Taking the
// writer lock makes late tuning safe too, not just setup-time calls.
func (s *Store) SetObjectsPerPage(n int) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objectsPerPage = n
}

// Catalog returns the schema catalog the store was created with.
func (s *Store) Catalog() *schema.Catalog { return s.cat }

// Insert stores an object in the named extent. The tuple must not already
// carry the class's id field; Insert allocates a fresh oid, prepends the id
// field, and returns the oid. Attribute completeness is not enforced here —
// the typechecker validates query/schema agreement — but extent existence is.
//
// Insert is safe to run concurrently with readers: the row is absorbed into
// the extent's indexes and live statistics first, then a new version is
// published atomically. Snapshots pinned before the publish never observe
// the row (probes resolve through the version chain); snapshots taken after
// always do.
func (s *Store) Insert(extent string, t *value.Tuple) (value.OID, error) {
	cl, ok := s.cat.ByExtent(extent)
	if !ok {
		return 0, fmt.Errorf("storage: unknown extent %q", extent)
	}
	if t.Has(cl.IDField) {
		return 0, fmt.Errorf("storage: object for %q already has id field %q", extent, cl.IDField)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.head.Load()
	oid := v.nextOID
	obj := value.NewTuple(cl.IDField, oid).Except(t)
	s.objects.Store(oid, &objVersion{extent: extent, obj: obj, born: v.seq + 1})
	s.absorbIndexes(extent, oid, obj)
	s.absorbStats(extent, obj, len(v.extents[extent])+1)
	s.head.Store(&version{
		seq:     v.seq + 1,
		nextOID: oid + 1,
		extents: cowExtents(v.extents, extent, oid),
	})
	return oid, nil
}

// Delete removes the object from its extent. Visibility is version-chained:
// a tombstone is prepended to the object's chain, so snapshots pinned
// before the delete keep seeing the old row while snapshots taken after do
// not. Index entries are not physically removed (pinned readers still probe
// the old state); probes filter through the chain, and the garbage
// collector prunes entries once no snapshot can reach the row. Live
// statistics unabsorb the row immediately. The oid is never reused.
func (s *Store) Delete(extent string, oid value.OID) error {
	if _, ok := s.cat.ByExtent(extent); !ok {
		return fmt.Errorf("storage: unknown extent %q", extent)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.head.Load()
	cur, err := s.aliveAt(extent, oid, v.seq)
	if err != nil {
		return fmt.Errorf("storage: delete: %w", err)
	}
	s.objects.Store(oid, &objVersion{extent: extent, born: v.seq + 1, prev: cur})
	s.unabsorbStats(extent, cur.obj)
	s.head.Store(&version{
		seq:     v.seq + 1,
		nextOID: v.nextOID,
		extents: replaceExtent(v.extents, extent, oid, true),
	})
	s.mutated()
	return nil
}

// Update replaces the object's attributes wholesale (the tuple must not
// carry the id field — identity is not updatable; Update re-prepends it).
// Visibility is version-chained like Delete: pinned snapshots keep the old
// state, later snapshots see the new one. The new attribute values are
// absorbed into the extent's indexes and live statistics (the old values
// are unabsorbed from statistics and horizon-filtered out of index probes).
func (s *Store) Update(extent string, oid value.OID, t *value.Tuple) error {
	cl, ok := s.cat.ByExtent(extent)
	if !ok {
		return fmt.Errorf("storage: unknown extent %q", extent)
	}
	if t.Has(cl.IDField) {
		return fmt.Errorf("storage: update for %q must not carry id field %q", extent, cl.IDField)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.head.Load()
	cur, err := s.aliveAt(extent, oid, v.seq)
	if err != nil {
		return fmt.Errorf("storage: update: %w", err)
	}
	obj := value.NewTuple(cl.IDField, oid).Except(t)
	s.objects.Store(oid, &objVersion{extent: extent, obj: obj, born: v.seq + 1, prev: cur})
	s.absorbIndexes(extent, oid, obj)
	s.unabsorbStats(extent, cur.obj)
	s.absorbStats(extent, obj, len(v.extents[extent]))
	// The extent keeps the same membership but the slice backing is replaced
	// so stale materializations are detected by pointer identity.
	s.head.Store(&version{
		seq:     v.seq + 1,
		nextOID: v.nextOID,
		extents: replaceExtent(v.extents, extent, oid, false),
	})
	s.mutated()
	return nil
}

// aliveAt resolves the object's chain at seq and verifies it is alive and
// belongs to the extent. Caller holds the writer lock.
func (s *Store) aliveAt(extent string, oid value.OID, seq uint64) (*objVersion, error) {
	n, ok := s.objects.Load(oid)
	if !ok {
		return nil, fmt.Errorf("no object %v", oid)
	}
	cur := n.(*objVersion).at(seq)
	if cur == nil || cur.obj == nil {
		return nil, fmt.Errorf("object %v is deleted", oid)
	}
	if cur.extent != extent {
		return nil, fmt.Errorf("object %v belongs to extent %q, not %q", oid, cur.extent, extent)
	}
	return cur, nil
}

// mutated counts one delete/update toward the auto-GC trigger and runs a
// collection when the threshold is reached. Caller holds the writer lock.
func (s *Store) mutated() {
	s.mutations++ //lint:adllint atomicmeter every caller already holds s.mu (Delete/Update write path)
	if s.gcEvery > 0 && s.mutations >= s.gcEvery {
		s.gcLocked()
	}
}

// objectAt resolves an oid to its state at seq without metering; ok is false
// for unknown, not-yet-born, or deleted objects.
func (s *Store) objectAt(oid value.OID, seq uint64) (*value.Tuple, bool) {
	n, ok := s.objects.Load(oid)
	if !ok {
		return nil, false
	}
	cur := n.(*objVersion).at(seq)
	if cur == nil || cur.obj == nil {
		return nil, false
	}
	return cur.obj, true
}

// lookupAt is objectAt with metering (see Lookup for the page model).
func (s *Store) lookupAt(oid value.OID, seq uint64) (*value.Tuple, bool) {
	obj, ok := s.objectAt(oid, seq)
	if ok {
		s.objectReads.Add(1)
		page := int64(uint64(oid)) / int64(s.objectsPerPage)
		if s.lastPage.Load() != page {
			s.pageReads.Add(1)
			s.lastPage.Store(page)
		}
	}
	return obj, ok
}

// Lookup fetches an object by oid as of the latest version, metering the
// access. The page meter models a single one-page buffer: under serial
// execution the counts are exact; under parallel execution concurrent
// fetches share that one buffer, so PageReads is an upper bound (interleaved
// goroutines evict each other's page) — compare page counts across serial
// runs only. The load-then-store (rather than an unconditional swap) keeps
// the sequential-locality hot path free of contended writes.
func (s *Store) Lookup(oid value.OID) (*value.Tuple, bool) {
	return s.lookupAt(oid, s.head.Load().seq)
}

// Deref implements pointer dereferencing for the evaluator: it is Lookup
// without the comma-ok, failing loudly on dangling oids.
func (s *Store) Deref(oid value.OID) (*value.Tuple, error) {
	obj, ok := s.Lookup(oid)
	if !ok {
		return nil, fmt.Errorf("storage: dangling oid %v", oid)
	}
	return obj, nil
}

// Table returns the extent as of the latest version as a set of tuples.
// Callers must treat the set as immutable. Readers that need a stable view
// across several calls pin a Snapshot instead.
func (s *Store) Table(name string) (*value.Set, error) {
	sn := s.Snapshot()
	defer sn.Release()
	return sn.Table(name)
}

// sharesPrefix reports whether cached is a prefix of oids sharing the same
// backing array — the insert-only delta case materialize can extend. A
// delete or update replaces the extent slice's backing (replaceExtent), so
// a stale cache entry can never pass this check.
func sharesPrefix(cached, oids []value.OID) bool {
	if len(cached) > len(oids) {
		return false
	}
	if len(cached) == 0 {
		return true
	}
	return &cached[0] == &oids[0]
}

// materialize returns the set over an extent's oid list as of seq, serving
// from and maintaining the per-extent cache: an exact hit (same length, same
// backing array) is returned as-is, a newer superset sharing the cached
// backing clones the cached set and adds only the delta (copy-on-write — the
// cached set stays valid for snapshots that still reference it), anything
// else rebuilds. The cache keeps whichever materialization belongs to the
// newest version requested so far; requests for older versions rebuild
// without disturbing it.
func (s *Store) materialize(name string, oids []value.OID, seq uint64) *value.Set {
	n := len(oids)
	s.matMu.Lock()
	defer s.matMu.Unlock()
	e := s.mat[name]
	if e.set != nil && len(e.oids) == n && sharesPrefix(e.oids, oids) {
		return e.set
	}
	var set *value.Set
	if e.set != nil && len(e.oids) < n && sharesPrefix(e.oids, oids) {
		set = e.set.Clone()
		for _, oid := range oids[len(e.oids):] {
			if obj, ok := s.objectAt(oid, seq); ok {
				set.Add(obj)
			}
		}
	} else {
		set = value.NewSetCap(n)
		for _, oid := range oids {
			if obj, ok := s.objectAt(oid, seq); ok {
				set.Add(obj)
			}
		}
	}
	if seq >= e.seq || e.set == nil {
		s.mat[name] = matEntry{seq: seq, oids: oids, set: set}
	}
	return set
}

// meterScan charges one whole-extent scan over rows objects: the scan
// counter plus one page touch per page — charged even when the materialized
// set is cached, because the meter models the access path's logical I/O, not
// the Go-level memoization. The sweep also evicts the one-page lookup
// buffer.
func (s *Store) meterScan(rows int) {
	s.extentScans.Add(1)
	if rows > 0 {
		s.pageReads.Add(int64((rows + s.objectsPerPage - 1) / s.objectsPerPage))
	}
	s.lastPage.Store(-1)
}

// OIDs returns the oids of an extent in insertion order, as of the latest
// version.
func (s *Store) OIDs(extent string) []value.OID {
	sn := s.Snapshot()
	defer sn.Release()
	return sn.OIDs(extent)
}

// Size reports the number of objects in an extent as of the latest version.
func (s *Store) Size(extent string) int {
	sn := s.Snapshot()
	defer sn.Release()
	return sn.Size(extent)
}

// Stats returns the I/O counters accumulated since the last ResetStats.
func (s *Store) Stats() Stats {
	return Stats{
		ObjectReads: int(s.objectReads.Load()),
		PageReads:   int(s.pageReads.Load()),
		ExtentScans: int(s.extentScans.Load()),
		IndexProbes: int(s.indexProbes.Load()),
	}
}

// ResetStats clears the I/O counters.
func (s *Store) ResetStats() {
	s.objectReads.Store(0)
	s.pageReads.Store(0)
	s.extentScans.Store(0)
	s.indexProbes.Store(0)
	s.lastPage.Store(-1)
}

// MemDB is a trivial table provider for tests and paper figures: named
// in-memory sets with no schema, no oids and no metering.
type MemDB struct {
	Tables map[string]*value.Set
	Objs   map[value.OID]*value.Tuple
}

// NewMemDB builds a MemDB from alternating name/*value.Set pairs.
func NewMemDB(pairs ...any) *MemDB {
	db := &MemDB{Tables: map[string]*value.Set{}, Objs: map[value.OID]*value.Tuple{}}
	for i := 0; i < len(pairs); i += 2 {
		db.Tables[pairs[i].(string)] = pairs[i+1].(*value.Set)
	}
	return db
}

// Table returns the named table.
func (db *MemDB) Table(name string) (*value.Set, error) {
	t, ok := db.Tables[name]
	if !ok {
		return nil, fmt.Errorf("storage: unknown base table %q", name)
	}
	return t, nil
}

// Deref resolves an oid if the MemDB carries objects.
func (db *MemDB) Deref(oid value.OID) (*value.Tuple, error) {
	if t, ok := db.Objs[oid]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("storage: dangling oid %v", oid)
}

// TableNames lists the tables, sorted, for diagnostics.
func (db *MemDB) TableNames() []string {
	out := make([]string, 0, len(db.Tables))
	for n := range db.Tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
