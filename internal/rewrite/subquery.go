package rewrite

import (
	"repro/internal/adl"
)

// subquery describes a correlated query block found inside a parameter
// expression: an optional map layer over an optional selection over a
// base-table-rooted operand Y, i.e. the algebraic image of
//
//	Y′ = select G(x, y) from y in Y where Q(x, y)
//
// from the paper's general two-block format (§5.1).
type subquery struct {
	S    adl.Expr // the whole matched subexpression, for replacement
	YVar string   // the iteration variable y
	Q    adl.Expr // the selection predicate (true if no selection layer)
	G    adl.Expr // the map body (nil for identity)
	Y    adl.Expr // the operand, mentioning a base table
}

// matchSubquery recognizes the three shapes α∘σ, α, σ over an operand.
func matchSubquery(e adl.Expr) *subquery {
	switch n := e.(type) {
	case *adl.Select:
		return &subquery{S: e, YVar: n.Var, Q: n.Pred, Y: n.Src}
	case *adl.Map:
		if sel, ok := n.Src.(*adl.Select); ok {
			// Normalize the selection variable to the map variable.
			q := sel.Pred
			if sel.Var != n.Var {
				q = adl.Subst(q, sel.Var, adl.V(n.Var))
			}
			return &subquery{S: e, YVar: n.Var, Q: q, G: n.Body, Y: sel.Src}
		}
		return &subquery{S: e, YVar: n.Var, Q: adl.CBool(true), G: n.Body, Y: n.Src}
	}
	return nil
}

// findSubquery locates the first (outermost, left-to-right) subquery inside
// the parameter expression P of an iterator binding x, such that:
//
//   - the operand Y mentions a base table (the §3 optimization goal) and does
//     not depend on x,
//   - the block is correlated with x (uncorrelated subqueries are constants
//     and "treated as such"),
//   - every free variable of the block is available at the iterator level
//     (it uses nothing bound by quantifiers between the iterator and itself),
//     outerFree being the free variables of the whole iterator expression.
func findSubquery(P adl.Expr, x string, outerFree map[string]bool) *subquery {
	var found *subquery
	var visit func(e adl.Expr) bool
	visit = func(e adl.Expr) bool {
		if found != nil {
			return false
		}
		if sq := matchSubquery(e); sq != nil {
			if ContainsTable(sq.Y) && !adl.HasFree(sq.Y, x) && adl.HasFree(sq.S, x) {
				ok := true
				for v := range adl.FreeVars(sq.S) {
					if v != x && !outerFree[v] {
						ok = false
						break
					}
				}
				if ok {
					found = sq
					return false
				}
			}
		}
		return true
	}
	adl.Walk(P, visit)
	return found
}
