package rewrite

import (
	"repro/internal/adl"
	"repro/internal/types"
)

// ExpandRules rewrite set comparison operations into quantifier expressions,
// the preprocessing step of §5.2.1 ([CeGo85]); the equivalences are the
// paper's Table 1, plus the Table 2 predicate forms (emptiness tests, count
// comparisons with zero, and empty intersections). Expansion is targeted:
// a comparison is expanded only when one of its operands mentions a base
// table, because only then can the resulting quantifier expression be
// unnested into a join — expanding comparisons between set-valued
// attributes would be a pessimization (§5.2.1).
func ExpandRules() []Rule {
	return []Rule{
		{Name: "expand-in", Apply: expandIn},
		{Name: "expand-has", Apply: expandHas},
		{Name: "expand-subseteq", Apply: expandSubEq},
		{Name: "expand-supseteq", Apply: expandSupEq},
		{Name: "expand-subset", Apply: expandSub},
		{Name: "expand-supset", Apply: expandSup},
		{Name: "expand-seteq", Apply: expandSetEq},
		// The intersect-empty form must be matched before the generic
		// emptiness test, which would otherwise swallow it.
		{Name: "expand-intersect-empty", Apply: expandIntersectEmpty},
		{Name: "expand-empty-eq", Apply: expandEmptyEq},
		{Name: "expand-count-zero", Apply: expandCountZero},
	}
}

// worthExpanding gates expansion on the presence of a base table in either
// operand.
func worthExpanding(l, r adl.Expr) bool {
	return ContainsTable(l) || ContainsTable(r)
}

// expandIn: x.c ∈ Y′ ⇒ ∃y ∈ Y′ • y = x.c  (Table 1, row 1).
func expandIn(e adl.Expr, _ *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Cmp)
	if !ok || n.Op != adl.In || !ContainsTable(n.R) {
		return e, false
	}
	y := adl.Fresh("y", n.L, n.R)
	return adl.Ex(y, n.R, adl.EqE(adl.V(y), n.L)), true
}

// expandHas: x.c ∋ Y′ ⇒ ∃z ∈ x.c • z = Y′  (Table 1, last row).
func expandHas(e adl.Expr, _ *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Cmp)
	if !ok || n.Op != adl.Has || !worthExpanding(n.L, n.R) {
		return e, false
	}
	z := adl.Fresh("z", n.L, n.R)
	return adl.Ex(z, n.L, adl.EqE(adl.V(z), n.R)), true
}

// expandSubEq: x.c ⊆ Y′ ⇒ ∀z ∈ x.c • z ∈ Y′  (Table 1; the inner ∈ expands
// further when Y′ mentions a base table).
func expandSubEq(e adl.Expr, _ *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Cmp)
	if !ok || n.Op != adl.SubEq || !worthExpanding(n.L, n.R) {
		return e, false
	}
	z := adl.Fresh("z", n.L, n.R)
	return adl.All(z, n.L, adl.CmpE(adl.In, adl.V(z), n.R)), true
}

// expandSupEq: x.c ⊇ Y′ ⇒ ∀y ∈ Y′ • y ∈ x.c  (Table 1, row 7).
func expandSupEq(e adl.Expr, _ *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Cmp)
	if !ok || n.Op != adl.SupEq || !worthExpanding(n.L, n.R) {
		return e, false
	}
	y := adl.Fresh("y", n.L, n.R)
	return adl.All(y, n.R, adl.CmpE(adl.In, adl.V(y), n.L)), true
}

// expandSub: x.c ⊂ Y′ ⇒ x.c ⊆ Y′ ∧ ¬(x.c ⊇ Y′)  (Table 1, row 2: the
// conjunction of a universal and a negated universal, which continue to
// expand).
func expandSub(e adl.Expr, _ *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Cmp)
	if !ok || n.Op != adl.Sub || !worthExpanding(n.L, n.R) {
		return e, false
	}
	return adl.AndE(
		adl.CmpE(adl.SubEq, n.L, n.R),
		adl.NotE(adl.CmpE(adl.SupEq, n.L, n.R)),
	), true
}

// expandSup: x.c ⊃ Y′ ⇒ x.c ⊇ Y′ ∧ ¬(x.c ⊆ Y′)  (Table 1, row 8).
func expandSup(e adl.Expr, _ *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Cmp)
	if !ok || n.Op != adl.Sup || !worthExpanding(n.L, n.R) {
		return e, false
	}
	return adl.AndE(
		adl.CmpE(adl.SupEq, n.L, n.R),
		adl.NotE(adl.CmpE(adl.SubEq, n.L, n.R)),
	), true
}

// expandSetEq: x.c = Y′ ⇒ x.c ⊆ Y′ ∧ x.c ⊇ Y′  (Table 1, row 5) — only when
// both operands are statically set-typed (equality is overloaded).
func expandSetEq(e adl.Expr, ctx *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Cmp)
	if !ok || n.Op != adl.Eq || !worthExpanding(n.L, n.R) {
		return e, false
	}
	if staticallyEmptySet(n.L) || staticallyEmptySet(n.R) {
		return e, false // handled by expand-empty-eq
	}
	lt, err := ctx.typeOf(n.L)
	if err != nil {
		return e, false
	}
	rt, err := ctx.typeOf(n.R)
	if err != nil {
		return e, false
	}
	if _, isSet := lt.(*types.Set); !isSet {
		return e, false
	}
	if _, isSet := rt.(*types.Set); !isSet {
		return e, false
	}
	return adl.AndE(
		adl.CmpE(adl.SubEq, n.L, n.R),
		adl.CmpE(adl.SupEq, n.L, n.R),
	), true
}

// expandEmptyEq: Y′ = ∅ ⇒ ¬∃y ∈ Y′ • true  (Table 2, row 1).
func expandEmptyEq(e adl.Expr, _ *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Cmp)
	if !ok || n.Op != adl.Eq {
		return e, false
	}
	var target adl.Expr
	switch {
	case staticallyEmptySet(n.R) && ContainsTable(n.L):
		target = n.L
	case staticallyEmptySet(n.L) && ContainsTable(n.R):
		target = n.R
	default:
		return e, false
	}
	y := adl.Fresh("y", target)
	return adl.NotE(adl.Ex(y, target, adl.CBool(true))), true
}

// expandCountZero: count(Y′) = 0 ⇒ ¬∃y ∈ Y′ • true  (Table 2, row 2).
func expandCountZero(e adl.Expr, _ *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Cmp)
	if !ok || n.Op != adl.Eq {
		return e, false
	}
	agg, zero := n.L, n.R
	if _, isAgg := agg.(*adl.Agg); !isAgg {
		agg, zero = n.R, n.L
	}
	a, ok := agg.(*adl.Agg)
	if !ok || a.Op != adl.Count || !ContainsTable(a.X) {
		return e, false
	}
	if c, ok := zero.(*adl.Const); !ok || c.Val.String() != "0" {
		return e, false
	}
	y := adl.Fresh("y", a.X)
	return adl.NotE(adl.Ex(y, a.X, adl.CBool(true))), true
}

// expandIntersectEmpty: x.c ∩ Y′ = ∅ ⇒ ¬∃y ∈ Y′ • y ∈ x.c  (Table 2, row 3).
// The quantifier ranges over the operand that mentions a base table.
func expandIntersectEmpty(e adl.Expr, _ *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Cmp)
	if !ok || n.Op != adl.Eq {
		return e, false
	}
	setop, empty := n.L, n.R
	if !staticallyEmptySet(empty) {
		setop, empty = n.R, n.L
	}
	if !staticallyEmptySet(empty) {
		return e, false
	}
	so, ok := setop.(*adl.SetOp)
	if !ok || so.Op != adl.Intersect {
		return e, false
	}
	rng, other := so.R, so.L
	if !ContainsTable(rng) {
		rng, other = so.L, so.R
	}
	if !ContainsTable(rng) {
		return e, false
	}
	y := adl.Fresh("y", so.L, so.R)
	return adl.NotE(adl.Ex(y, rng, adl.CmpE(adl.In, adl.V(y), other))), true
}
