package rewrite

import (
	"fmt"

	"repro/internal/adl"
	"repro/internal/schema"
	"repro/internal/types"
)

// Result is the outcome of Optimize: the rewritten expression, the full rule
// trace, and which of the §4 options contributed.
type Result struct {
	Expr adl.Expr
	// Trace lists every rule firing in order.
	Trace []Step
	// OptionsUsed names the §4 options that fired, in priority order, among
	// "relational-join", "attribute-unnest", "nestjoin".
	OptionsUsed []string
	// NestedBefore/NestedAfter are the optimization objective (base tables
	// nested in iterator parameters) before and after.
	NestedBefore, NestedAfter int
}

// relationalRules is the rule set of optimization option "transformation
// into join queries": normalization, Table 1/2 expansion, quantifier range
// simplification and exchange, negation pushing, and Rules 1 and 2.
func relationalRules() []Rule {
	var rules []Rule
	rules = append(rules, NormalizeRules()...)
	rules = append(rules, ExpandRules()...)
	rules = append(rules, QuantRules()...)
	rules = append(rules, NegationRules()...)
	rules = append(rules, JoinRules()...)
	return rules
}

// Optimize applies the paper's §4 rewrite strategy:
//
//  1. try to rewrite to the relational join operators (join, semijoin,
//     antijoin);
//  2. if nesting over base tables remains, try to flatten set-valued
//     attributes (when the nesting phase can be skipped);
//  3. if nesting still remains, rewrite to the nestjoin operator, which was
//     introduced to beat nested-loop processing;
//  4. whatever remains is left as is — executed by nested loops.
//
// The options are tried as alternatives starting from the normalized input,
// in priority order (relational transformations can dissolve the query-block
// structure the nestjoin needs, so the nestjoin option is attempted both on
// the relational residue and on the normalized original). The first
// candidate that removes all nested base tables wins; otherwise the
// candidate with the fewest remaining nested tables, earliest option first.
func Optimize(e adl.Expr, ctx *Context) *Result {
	res := &Result{NestedBefore: NestedTableCount(e)}

	norm := NewEngine(NormalizeRules())
	base := norm.Run(e, ctx)
	normTrace := norm.Trace

	type candidate struct {
		expr    adl.Expr
		trace   []Step
		options []string
	}
	var cands []candidate

	// Option 1: relational join rewriting.
	rel := NewEngine(relationalRules())
	c1 := rel.Run(base, ctx)
	cands = append(cands, candidate{c1, rel.Trace, []string{"relational-join"}})

	if NestedTableCount(c1) > 0 {
		// Option 2: attribute unnesting (then relational rules again to
		// consume the exposed quantifiers).
		au := NewEngine(append(AttrUnnestRules(), relationalRules()...))
		c2 := au.Run(base, ctx)
		if NestedTableCount(c2) < NestedTableCount(c1) {
			cands = append(cands, candidate{c2, au.Trace, []string{"attribute-unnest", "relational-join"}})
		}

		// Option 3a: nestjoin on the relational residue (subquery shapes
		// that survived expansion, e.g. aggregates between blocks).
		nj1 := NewEngine(NestjoinRules())
		c3 := nj1.Run(c1, ctx)
		if !adl.Equal(c3, c1) {
			rel3 := NewEngine(relationalRules())
			c3 = rel3.Run(c3, ctx)
			tr := append(append([]Step{}, rel.Trace...), nj1.Trace...)
			tr = append(tr, rel3.Trace...)
			cands = append(cands, candidate{c3, tr, []string{"relational-join", "nestjoin"}})
		}

		// Option 3b: nestjoin first, on the normalized original — for
		// queries whose block structure the expansion rules would dissolve
		// (set comparisons between blocks, §5.2.2).
		nj2 := NewEngine(NestjoinRules())
		c4 := nj2.Run(base, ctx)
		if !adl.Equal(c4, base) {
			rel4 := NewEngine(relationalRules())
			c4 = rel4.Run(c4, ctx)
			tr := append(append([]Step{}, nj2.Trace...), rel4.Trace...)
			cands = append(cands, candidate{c4, tr, []string{"nestjoin", "relational-join"}})
		}
	}

	best := cands[0]
	bestCount := NestedTableCount(best.expr)
	for _, c := range cands[1:] {
		if n := NestedTableCount(c.expr); n < bestCount {
			best, bestCount = c, n
		}
	}

	res.Expr = best.expr
	res.Trace = append(normTrace, best.trace...)
	if len(best.trace) > 0 {
		res.OptionsUsed = best.options
	}

	// Last resort before nested loops: uncorrelated subqueries are
	// constants — hoist them into with-bindings evaluated once (§3).
	if bestCount > 0 {
		hoist := NewEngine([]Rule{{Name: "hoist-constant", Apply: hoistConstant}})
		hoisted := hoist.Run(res.Expr, ctx)
		if NestedTableCount(hoisted) < bestCount {
			res.Expr = hoisted
			res.Trace = append(res.Trace, hoist.Trace...)
			res.OptionsUsed = append(res.OptionsUsed, "constant-hoist")
		}
	}

	res.NestedAfter = NestedTableCount(res.Expr)
	return res
}

// CatalogResolver adapts a schema catalog to the adl.TypeResolver interface
// used by type-dependent rules.
type CatalogResolver struct{ Cat *schema.Catalog }

// TableElem returns the reference-annotated element type of an extent.
func (r CatalogResolver) TableElem(name string) (*types.Tuple, error) {
	cl, ok := r.Cat.ByExtent(name)
	if !ok {
		return nil, fmt.Errorf("rewrite: unknown base table %q", name)
	}
	return r.Cat.ObjectType(cl)
}

// ClassTuple returns the reference-annotated object type of a class.
func (r CatalogResolver) ClassTuple(class string) (*types.Tuple, error) {
	cl, ok := r.Cat.Class(class)
	if !ok {
		return nil, fmt.Errorf("rewrite: unknown class %q", class)
	}
	return r.Cat.ObjectType(cl)
}

// NewContext builds a rewrite context over a catalog.
func NewContext(cat *schema.Catalog) *Context {
	return &Context{Resolver: CatalogResolver{Cat: cat}, Env: adl.TypeEnv{}}
}

// StaticResolver resolves table types from an explicit map; used for
// catalog-less databases such as the paper's figure examples.
type StaticResolver struct{ Tables map[string]*types.Tuple }

// TableElem returns the element type of a table.
func (r StaticResolver) TableElem(name string) (*types.Tuple, error) {
	t, ok := r.Tables[name]
	if !ok {
		return nil, fmt.Errorf("rewrite: unknown base table %q", name)
	}
	return t, nil
}

// ClassTuple always fails: static resolvers carry no class schema.
func (r StaticResolver) ClassTuple(class string) (*types.Tuple, error) {
	return nil, fmt.Errorf("rewrite: unknown class %q", class)
}

// NewStaticContext builds a rewrite context over explicit table types.
func NewStaticContext(tables map[string]*types.Tuple) *Context {
	return &Context{Resolver: StaticResolver{Tables: tables}, Env: adl.TypeEnv{}}
}
