package rewrite

import (
	"testing"

	"repro/internal/adl"
	"repro/internal/bench"
)

// TestReduceKleene covers the three-valued boolean algebra directly.
func TestReduceKleene(t *testing.T) {
	tr, fa := adl.CBool(true), adl.CBool(false)
	unk := adl.CmpE(adl.Gt, adl.Dot(adl.V("x"), "a"), adl.CInt(1))
	cases := []struct {
		e    adl.Expr
		want TV
	}{
		{tr, TVTrue},
		{fa, TVFalse},
		{unk, TVUnknown},
		{adl.NotE(tr), TVFalse},
		{adl.NotE(fa), TVTrue},
		{adl.NotE(unk), TVUnknown},
		{adl.AndE(tr, unk), TVUnknown},
		{adl.AndE(fa, unk), TVFalse}, // false dominates
		{adl.AndE(tr, tr), TVTrue},
		{adl.OrE(tr, unk), TVTrue}, // true dominates
		{adl.OrE(fa, unk), TVUnknown},
		{adl.OrE(fa, fa), TVFalse},
		// Quantifiers over statically empty ranges.
		{adl.Ex("y", adl.SetOf(), unk), TVFalse},
		{adl.All("y", adl.SetOf(), unk), TVTrue},
		{adl.Ex("y", adl.T("Y"), unk), TVUnknown},
		// Constant comparisons fold.
		{adl.CmpE(adl.Lt, adl.CInt(1), adl.CInt(2)), TVTrue},
		{adl.CmpE(adl.Ge, adl.CInt(1), adl.CInt(2)), TVFalse},
		{adl.CmpE(adl.Le, adl.CInt(2), adl.CInt(2)), TVTrue},
		{adl.CmpE(adl.Gt, adl.CInt(3), adl.CInt(2)), TVTrue},
		{adl.CmpE(adl.Ne, adl.CInt(1), adl.CInt(2)), TVTrue},
		{adl.CmpE(adl.Ne, adl.CInt(2), adl.CInt(2)), TVFalse},
		{adl.EqE(adl.CStr("a"), adl.CStr("a")), TVTrue},
		// ∅ on the left of inclusions.
		{adl.CmpE(adl.SubEq, adl.SetOf(), adl.Dot(adl.V("x"), "c")), TVTrue},
		{adl.CmpE(adl.Sup, adl.SetOf(), adl.Dot(adl.V("x"), "c")), TVFalse},
		{adl.CmpE(adl.Has, adl.SetOf(), adl.CInt(1)), TVFalse},
	}
	for _, c := range cases {
		if got := Reduce(c.e); got != c.want {
			t.Errorf("Reduce(%s) = %s, want %s", c.e, got, c.want)
		}
	}
	// TV rendering (the Table 3 column).
	if TVTrue.String() != "true" || TVFalse.String() != "false" || TVUnknown.String() != "?" {
		t.Errorf("TV strings: %s %s %s", TVTrue, TVFalse, TVUnknown)
	}
}

// TestRangeUnionForall covers the ∀ branch of the union range rule.
func TestRangeUnionForall(t *testing.T) {
	db := bench.Figure2DB()
	ctx := figureCtx()
	// ∀y ∈ (σ[d=1](Y) ∪ σ[d=3](Y)) • y.e ≥ 1 — true for all rows.
	u := &adl.SetOp{Op: adl.Union,
		L: adl.Sel("y", adl.EqE(adl.Dot(adl.V("y"), "d"), adl.CInt(1)), adl.T("Y")),
		R: adl.Sel("y", adl.EqE(adl.Dot(adl.V("y"), "d"), adl.CInt(3)), adl.T("Y"))}
	q := adl.Sel("x", adl.All("y", u, adl.CmpE(adl.Ge, adl.Dot(adl.V("y"), "e"), adl.CInt(1))), adl.T("X"))
	en := relationalEngine()
	got := en.Run(q, ctx)
	mustEq(t, db, q, got)
	fired := false
	for _, s := range en.Trace {
		if s.Rule == "range-union" {
			fired = true
		}
	}
	if !fired {
		t.Errorf("range-union did not fire: %s", got)
	}
}

// TestRangeIntersectForall covers the ∀ branch of the intersect range rule.
func TestRangeIntersectForall(t *testing.T) {
	db := bench.Figure2DB()
	ctx := figureCtx()
	is := &adl.SetOp{Op: adl.Intersect,
		L: adl.Dot(adl.V("x"), "c"),
		R: adl.Sel("y", adl.EqE(adl.Dot(adl.V("y"), "d"), adl.CInt(1)), adl.T("Y"))}
	q := adl.Sel("x", adl.All("y", is, adl.CmpE(adl.Ge, adl.Dot(adl.V("y"), "e"), adl.CInt(1))), adl.T("X"))
	en := relationalEngine()
	got := en.Run(q, ctx)
	mustEq(t, db, q, got)
}

// TestUnnestAttrProjectForm covers the π form of the attribute-unnest rule
// (the paper's EQ4 written with π instead of α).
func TestUnnestAttrProjectForm(t *testing.T) {
	st := bench.Generate(bench.Config{Suppliers: 20, Parts: 15, DanglingFrac: 0.2, Seed: 3})
	ctx := NewContext(st.Catalog())
	q := adl.Proj(
		adl.Sel("s",
			adl.Ex("z", adl.Dot(adl.V("s"), "parts"),
				adl.NotE(adl.Ex("p", adl.T("PART"),
					adl.EqE(adl.V("z"), adl.SubT(adl.V("p"), "pid"))))),
			adl.T("SUPPLIER")),
		"eid", "sname")
	en := NewEngine(append(AttrUnnestRules(), relationalRules()...))
	got := en.Run(q, ctx)
	if NestedTableCount(got) != 0 {
		t.Fatalf("π-form EQ4 not unnested: %s", got)
	}
	mustEq(t, st, q, got)
	// The projection keeping the unnested attribute must NOT fire.
	q2 := adl.Proj(
		adl.Sel("s",
			adl.Ex("z", adl.Dot(adl.V("s"), "parts"),
				adl.NotE(adl.Ex("p", adl.T("PART"),
					adl.EqE(adl.V("z"), adl.SubT(adl.V("p"), "pid"))))),
			adl.T("SUPPLIER")),
		"eid", "parts")
	en2 := NewEngine(AttrUnnestRules())
	got2 := en2.Run(q2, ctx)
	if !adl.Equal(got2, q2) {
		t.Errorf("projection keeping the attribute must block the rule: %s", got2)
	}
}

// TestGroupingRuleWrapper covers the engine-rule form of the guarded
// grouping rewrite.
func TestGroupingRuleWrapper(t *testing.T) {
	db := bench.Figure2DB()
	ctx := figureCtx()
	sub := adl.Sel("y", adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d")), adl.T("Y"))
	// ⊂ has P(x,∅) ≡ false: the guarded rule fires.
	q := adl.Sel("x", adl.CmpE(adl.Sub, adl.Dot(adl.V("x"), "c"), sub), adl.T("X"))
	en := NewEngine([]Rule{GroupingRule()})
	got := en.Run(q, ctx)
	if adl.Equal(got, q) {
		t.Fatalf("guarded grouping rule did not fire on ⊂")
	}
	mustEq(t, db, q, got)
}

// TestCatalogResolverErrors covers the unknown-name paths.
func TestCatalogResolverErrors(t *testing.T) {
	st := bench.Generate(bench.Config{Suppliers: 2, Parts: 2, Seed: 1})
	r := CatalogResolver{Cat: st.Catalog()}
	if _, err := r.TableElem("NOPE"); err == nil {
		t.Errorf("unknown table must fail")
	}
	if _, err := r.ClassTuple("Nope"); err == nil {
		t.Errorf("unknown class must fail")
	}
	if tt, err := r.ClassTuple("Part"); err != nil || tt == nil {
		t.Errorf("ClassTuple(Part) = %v, %v", tt, err)
	}
	sr := StaticResolver{}
	if _, err := sr.TableElem("X"); err == nil {
		t.Errorf("empty static resolver must fail")
	}
	if _, err := sr.ClassTuple("C"); err == nil {
		t.Errorf("static resolver has no classes")
	}
}

// TestNestjoinNameCollisions: the select variable colliding with the
// subquery variable forces a rename inside buildNestJoin.
func TestNestjoinNameCollisions(t *testing.T) {
	st := bench.Generate(bench.Config{Suppliers: 10, Parts: 8, Seed: 5})
	ctx := NewContext(st.Catalog())
	// Both blocks use the variable name "s".
	sub := adl.Sel("s", adl.CmpE(adl.In, adl.SubT(adl.V("s"), "pid"),
		adl.Dot(adl.V("s"), "parts")), adl.T("PART"))
	_ = sub
	// Note: with both bound as "s", the inner s shadows; construct instead
	// a nestjoin-map case with matching names.
	q := adl.MapE("s",
		adl.Tup("n", adl.Dot(adl.V("s"), "sname"),
			"k", adl.AggE(adl.Count,
				adl.Sel("p", adl.CmpE(adl.In, adl.SubT(adl.V("p"), "pid"),
					adl.Dot(adl.V("s"), "parts")), adl.T("PART")))),
		adl.T("SUPPLIER"))
	res := Optimize(q, ctx)
	if res.NestedAfter != 0 {
		t.Fatalf("nestjoin-map did not unnest: %s", res.Expr)
	}
	mustEq(t, st, q, res.Expr)
}
