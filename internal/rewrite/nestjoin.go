package rewrite

import (
	"repro/internal/adl"
)

// NestjoinRules implement the paper's third optimization option (§6.1): use
// the nestjoin operator ⊣ — grouping during join, without losing dangling
// left operand tuples — for nested queries that cannot be rewritten into
// flat relational join operations. The two-block select query
//
//	σ[x : P(x, Y′)](X)  with Y′ = σ[y : Q(x,y)](Y)
//
// becomes
//
//	π_SCH(X)(σ[x : P′](X ⊣(x,y : Q ; ys) Y))
//
// with P′ = P[Y′ := x.ys, x := x[SCH(X)]], and the map version (nesting in
// the select-clause)
//
//	α[x : F(x, Y′)](X)  becomes  α[x : F′](X ⊣(x,y : Q ; ys) Y).
//
// When the block carries a map layer Y′ = α[y : G](σ[y : Q](Y)), the
// extended nestjoin with right-tuple function G is produced ([StAB94]).
func NestjoinRules() []Rule {
	return []Rule{
		{Name: "nestjoin-select", Apply: nestjoinSelect},
		{Name: "nestjoin-map", Apply: nestjoinMap},
	}
}

func nestjoinSelect(e adl.Expr, ctx *Context) (adl.Expr, bool) {
	sel, ok := e.(*adl.Select)
	if !ok {
		return e, false
	}
	sch, ok := ctx.schOf(sel.Src)
	if !ok {
		return e, false
	}
	sq := findSubquery(sel.Pred, sel.Var, adl.FreeVars(e))
	if sq == nil {
		return e, false
	}
	join, repl := buildNestJoin(sel.Var, sel.Src, sq, sch)
	p := replaceExpr(sel.Pred, sq.S, repl)
	p = wrapWholeVar(p, sel.Var, sch)
	return adl.Proj(adl.Sel(sel.Var, p, join), sch...), true
}

func nestjoinMap(e adl.Expr, ctx *Context) (adl.Expr, bool) {
	m, ok := e.(*adl.Map)
	if !ok {
		return e, false
	}
	sch, ok := ctx.schOf(m.Src)
	if !ok {
		return e, false
	}
	sq := findSubquery(m.Body, m.Var, adl.FreeVars(e))
	if sq == nil {
		return e, false
	}
	join, repl := buildNestJoin(m.Var, m.Src, sq, sch)
	body := replaceExpr(m.Body, sq.S, repl)
	body = wrapWholeVar(body, m.Var, sch)
	return adl.MapE(m.Var, body, join), true
}

// buildNestJoin constructs X ⊣(x,y : Q ; [y→G ;] ys) Y and the replacement
// expression x.ys for the subquery occurrence.
func buildNestJoin(x string, src adl.Expr, sq *subquery, sch []string) (adl.Expr, adl.Expr) {
	as := freshAttr("ys", sch)
	yv, q, g := sq.YVar, sq.Q, sq.G
	if yv == x {
		nv := adl.Fresh(yv, sq.Q, sq.Y, src)
		q = adl.Subst(q, yv, adl.V(nv))
		if g != nil {
			g = adl.Subst(g, yv, adl.V(nv))
		}
		yv = nv
	}
	join := &adl.Join{Kind: adl.NestJ, LVar: x, RVar: yv, On: q, As: as,
		RFun: g, L: src, R: sq.Y}
	return join, adl.Dot(adl.V(x), as)
}
