package rewrite

import (
	"testing"

	"repro/internal/adl"
	"repro/internal/bench"
	"repro/internal/eval"
	"repro/internal/types"
)

// These tests force the alpha-renaming branches inside the rules: every rule
// that merges scopes must rename binders when names collide, and the results
// must stay semantics-preserving.

// TestComposeSelectRenames: the outer predicate free-references a variable
// with the inner binder's name.
func TestComposeSelectRenames(t *testing.T) {
	db := bench.Figure2DB()
	ctx := figureCtx()
	// The inner σ binds y; the outer predicate references a FREE variable
	// also named y (here introduced by a surrounding with-binding), so the
	// compose-select rule must rename the inner binder before merging.
	inner := adl.Sel("y", adl.EqE(adl.Dot(adl.V("y"), "d"), adl.CInt(1)), adl.T("Y"))
	outer2 := adl.LetE("y", adl.CInt(1),
		adl.Sel("x", adl.EqE(adl.Dot(adl.V("x"), "d"), adl.V("y")), inner))
	en := NewEngine(NormalizeRules())
	got := en.Run(outer2, ctx)
	mustEq(t, db, outer2, got)
	// After let-inline + compose, a single σ over Y remains.
	sel, ok := got.(*adl.Select)
	if !ok {
		t.Fatalf("normalized = %s", got)
	}
	if _, nested := sel.Src.(*adl.Select); nested {
		t.Errorf("selects not merged: %s", got)
	}
}

// TestRule1RenamesCollidingVar: σ and the quantifier use the same variable.
func TestRule1RenamesCollidingVar(t *testing.T) {
	db := bench.Figure2DB()
	ctx := figureCtx()
	// σ[y : ∃y1? — construct σ[y: ∃y ∈ Y • y.d = 1](X): quantifier shadows.
	q := adl.Sel("y",
		adl.Ex("y", adl.T("Y"), adl.EqE(adl.Dot(adl.V("y"), "d"), adl.CInt(1))),
		adl.T("X"))
	en := relationalEngine()
	got := en.Run(q, ctx)
	j, ok := got.(*adl.Join)
	if !ok || j.Kind != adl.Semi {
		t.Fatalf("shadowed rule1 = %s", got)
	}
	if j.LVar == j.RVar {
		t.Fatalf("join variables must be distinct after renaming: %s", got)
	}
	mustEq(t, db, q, got)
}

// TestRangeMapRenames: the quantifier predicate uses the map variable's name
// freely (bound outside), so rangeMap must rename the map binder.
func TestRangeMapRenames(t *testing.T) {
	db := bench.Figure2DB()
	ctx := figureCtx()
	// (∃w ∈ α[v : v.d](Y) • w = v.a) with v bound by the OUTER σ — the map's
	// own v must be renamed before substituting into the predicate.
	q := adl.Sel("v",
		adl.Ex("w",
			adl.MapE("v", adl.Dot(adl.V("v"), "d"), adl.T("Y")),
			adl.EqE(adl.V("w"), adl.Dot(adl.V("v"), "a"))),
		adl.T("X"))
	en := relationalEngine()
	got := en.Run(q, ctx)
	mustEq(t, db, q, got)
	if NestedTableCount(got) != 0 {
		t.Errorf("shadowed range-map case not unnested: %s", got)
	}
}

// TestQuantExchangeRenames: the inner quantifier variable collides with the
// outer's range variable references.
func TestQuantExchangeRenames(t *testing.T) {
	st := bench.Generate(bench.Config{Suppliers: 10, Parts: 8, Seed: 7})
	ctx := NewContext(st.Catalog())
	// σ[s : ∃x ∈ s.parts • ∃s1? — name the inner quantifier "s": after the
	// exchange it would capture the outer σ var unless renamed.
	q := adl.Sel("s",
		adl.Ex("x", adl.Dot(adl.V("s"), "parts"),
			adl.Ex("s", adl.T("PART"),
				adl.EqE(adl.V("x"), adl.SubT(adl.V("s"), "pid")))),
		adl.T("SUPPLIER"))
	res := Optimize(q, ctx)
	mustEq(t, st, q, res.Expr)
	if res.NestedAfter != 0 {
		t.Errorf("colliding exchange case not unnested: %s", res.Expr)
	}
}

// TestRule2Renames: Rule 2 with the inner selection variable distinct from
// the map variable, requiring normalization inside the matcher.
func TestRule2Renames(t *testing.T) {
	db := bench.Figure2DB()
	xf, err := eval.EvalSet(adl.Proj(adl.T("X"), "a"), nil, db)
	if err != nil {
		t.Fatal(err)
	}
	db.Tables["XF"] = xf
	ctx := NewStaticContext(map[string]*types.Tuple{
		"XF": types.NewTuple("a", types.IntType),
		"Y":  types.NewTuple("d", types.IntType, "e", types.IntType),
	})
	// The σ binds w while the map binds y: rule2 must align them.
	p := adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("w"), "d"))
	e := adl.Flat(adl.MapE("x",
		adl.MapE("y", adl.Cat(adl.V("x"), adl.V("y")),
			adl.Sel("w", p, adl.T("Y"))),
		adl.T("XF")))
	en := relationalEngine()
	got := en.Run(e, ctx)
	if _, ok := got.(*adl.Join); !ok {
		t.Fatalf("rule2 with distinct vars = %s", got)
	}
	mustEq(t, db, e, got)
}
