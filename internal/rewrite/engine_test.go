package rewrite

import (
	"testing"

	"repro/internal/adl"
	"repro/internal/bench"
	"repro/internal/value"
)

// TestEngineTerminatesOnAdversarialRules: the MaxSteps budget stops rule
// sets that never reach a fixpoint.
func TestEngineTerminatesOnAdversarialRules(t *testing.T) {
	flip := Rule{Name: "flip", Apply: func(e adl.Expr, _ *Context) (adl.Expr, bool) {
		if c, ok := e.(*adl.Const); ok {
			if b, isB := c.Val.(value.Bool); isB {
				return adl.CBool(!bool(b)), true
			}
		}
		return e, false
	}}
	en := NewEngine([]Rule{flip})
	en.MaxSteps = 50
	out := en.Run(adl.CBool(true), figureCtx())
	if out == nil {
		t.Fatal("engine returned nil")
	}
	if fired := len(en.Trace); fired < 50 {
		t.Fatalf("adversarial rule fired only %d times", fired)
	}
}

// TestEngineUntypeableFragmentsAreSafe: rules needing types skip gracefully
// when a fragment cannot be typed (unknown tables).
func TestEngineUntypeableFragmentsAreSafe(t *testing.T) {
	e := adl.Sel("x",
		adl.EqE(adl.AggE(adl.Count, adl.Sel("y",
			adl.CmpE(adl.In, adl.V("y"), adl.Dot(adl.V("x"), "c")), adl.T("GHOST"))), adl.CInt(2)),
		adl.T("ALSO_GHOST"))
	res := Optimize(e, figureCtx())
	if res.Expr == nil {
		t.Fatal("optimize returned nil on untypeable input")
	}
	// The nestjoin rule must NOT have fired (no schema available).
	n := adl.CountNodes(res.Expr, func(x adl.Expr) bool {
		j, ok := x.(*adl.Join)
		return ok && j.Kind == adl.NestJ
	})
	if n != 0 {
		t.Errorf("type-dependent rule fired without types: %s", res.Expr)
	}
}

// TestOptimizeNilResolver: a context without a resolver must not panic.
func TestOptimizeNilResolver(t *testing.T) {
	e := adl.Sel("x", adl.Ex("y", adl.T("Y"), adl.EqE(adl.V("y"), adl.Dot(adl.V("x"), "a"))), adl.T("X"))
	res := Optimize(e, &Context{})
	// Rule 1 needs no types: the semijoin still happens.
	if _, ok := res.Expr.(*adl.Join); !ok {
		t.Errorf("type-free rules should still fire: %s", res.Expr)
	}
}

// TestRewritePreservesShadowing: rules must respect variable shadowing (the
// inner binding of a reused name wins).
func TestRewritePreservesShadowing(t *testing.T) {
	st := bench.Generate(bench.Config{Suppliers: 8, Parts: 6, Seed: 13})
	ctx := NewContext(st.Catalog())
	// σ[s : ∃s ∈ PART • s.color = "red"](SUPPLIER): inner s shadows outer.
	e := adl.Sel("s",
		adl.Ex("s", adl.T("PART"), adl.EqE(adl.Dot(adl.V("s"), "color"), adl.CStr("red"))),
		adl.T("SUPPLIER"))
	res := Optimize(e, ctx)
	mustEq(t, st, e, res.Expr)
}

// TestWrapWholeVarHelper pins the z[X]/x substitution helper.
func TestWrapWholeVarHelper(t *testing.T) {
	// Whole-tuple use wrapped; field access left; shadowed scope untouched.
	e := adl.AndE(
		adl.CmpE(adl.In, adl.V("x"), adl.V("S")),
		adl.EqE(adl.Dot(adl.V("x"), "a"), adl.CInt(1)),
		adl.Ex("x", adl.T("Y"), adl.CmpE(adl.In, adl.V("x"), adl.V("T"))),
	)
	got := wrapWholeVar(e, "x", []string{"a", "b"})
	want := adl.AndE(
		adl.CmpE(adl.In, adl.SubT(adl.V("x"), "a", "b"), adl.V("S")),
		adl.EqE(adl.Dot(adl.V("x"), "a"), adl.CInt(1)),
		adl.Ex("x", adl.T("Y"), adl.CmpE(adl.In, adl.V("x"), adl.V("T"))),
	)
	if !adl.Equal(got, want) {
		t.Errorf("wrapWholeVar:\n got %s\nwant %s", got, want)
	}
}

// TestReplaceExprRespectsBinders pins the subquery-replacement helper.
func TestReplaceExprRespectsBinders(t *testing.T) {
	target := adl.Sel("y", adl.EqE(adl.Dot(adl.V("y"), "d"), adl.Dot(adl.V("x"), "a")), adl.T("Y"))
	// One occurrence free, one under a rebinding of x — only the free one
	// may be replaced.
	e := adl.AndE(
		adl.EqE(adl.AggE(adl.Count, target), adl.CInt(1)),
		adl.Ex("x", adl.T("X"), adl.EqE(adl.AggE(adl.Count, target), adl.CInt(2))),
	)
	got := replaceExpr(e, target, adl.V("R"))
	and := got.(*adl.And)
	if adl.CountNodes(and.L, func(x adl.Expr) bool { _, ok := x.(*adl.Select); return ok }) != 0 {
		t.Errorf("free occurrence not replaced: %s", and.L)
	}
	if adl.CountNodes(and.R, func(x adl.Expr) bool { _, ok := x.(*adl.Select); return ok }) != 1 {
		t.Errorf("shadowed occurrence wrongly replaced: %s", and.R)
	}
}

// TestFreshAttr pins the collision-avoiding attribute namer.
func TestFreshAttr(t *testing.T) {
	if got := freshAttr("ys", []string{"a", "b"}); got != "ys" {
		t.Errorf("freshAttr = %q", got)
	}
	if got := freshAttr("ys", []string{"ys"}); got == "ys" {
		t.Errorf("freshAttr did not avoid collision")
	}
}
