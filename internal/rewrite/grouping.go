package rewrite

import (
	"repro/internal/adl"
	"repro/internal/value"
)

// UnnestByGrouping applies the relational unnesting-by-grouping technique of
// [GaWo87] (§5.2.2) to a two-block select query:
//
//	σ[x : P(x, Y′)](X)  with Y′ = σ[y : Q(x,y)](Y)
//	⇒ π_SCH(X)(σ[x : P′](ν_{SCH(Y)→ys}(X ⋈(x,y:Q) Y)))
//
// a flat join query consisting of (1) a join evaluating the inner block
// predicate, (2) a nest operation for grouping, (3) a selection evaluating
// P, the predicate between blocks, and (4) a final projection.
//
// The technique loses dangling outer operand tuples in the join — the
// Complex Object bug. It is therefore guarded by the Table 3 static
// analysis: unless force is set, the rewrite fires only when P(x, ∅)
// statically reduces to false, the single case in which dangling tuples
// contribute nothing to the result. With force, the rewrite is applied
// unconditionally, which reproduces the bug (used by the Figure 2
// demonstration and the B3 benchmark).
func UnnestByGrouping(e adl.Expr, ctx *Context, force bool) (adl.Expr, bool) {
	sel, ok := e.(*adl.Select)
	if !ok {
		return e, false
	}
	schX, ok := ctx.schOf(sel.Src)
	if !ok {
		return e, false
	}
	sq := findSubquery(sel.Pred, sel.Var, adl.FreeVars(e))
	if sq == nil {
		return e, false
	}
	schY, ok := ctx.schOf(sq.Y)
	if !ok {
		return e, false
	}
	// The extended Cartesian product concatenates operand tuples; attribute
	// names must not clash (the paper assumes no naming conflicts occur).
	for _, a := range schX {
		for _, b := range schY {
			if a == b {
				return e, false
			}
		}
	}
	if !force && ReduceWithEmpty(sel.Pred, sq.S) != TVFalse {
		return e, false
	}

	as := freshAttr("ys", append(append([]string{}, schX...), schY...))
	yv, q, g := sq.YVar, sq.Q, sq.G
	if yv == sel.Var {
		nv := adl.Fresh(yv, sq.Q, sq.Y, sel.Src)
		q = adl.Subst(q, yv, adl.V(nv))
		if g != nil {
			g = adl.Subst(g, yv, adl.V(nv))
		}
		yv = nv
	}
	join := &adl.Join{Kind: adl.Inner, LVar: sel.Var, RVar: yv, On: q, L: sel.Src, R: sq.Y}
	nest := adl.Nu(join, as, schY...)

	// Replace the subquery occurrence: with a map layer, the grouped set
	// x.ys holds whole Y tuples, so the map is re-applied to it.
	var repl adl.Expr = adl.Dot(adl.V(sel.Var), as)
	if g != nil {
		repl = adl.MapE(yv, g, repl)
	}
	p := replaceExpr(sel.Pred, sq.S, repl)
	p = wrapWholeVar(p, sel.Var, schX)
	return adl.Proj(adl.Sel(sel.Var, p, nest), schX...), true
}

// GroupingRule wraps UnnestByGrouping as an engine rule (guarded form).
func GroupingRule() Rule {
	return Rule{
		Name: "gawo87-grouping",
		Apply: func(e adl.Expr, ctx *Context) (adl.Expr, bool) {
			return UnnestByGrouping(e, ctx, false)
		},
	}
}

// UnnestByGroupingOuter is the [GaWo87] outer-join repair of the bug,
// adapted to complex objects as the paper sketches in §5.2.2 ("in using the
// outerjoin, NULL values are used to represent the empty set"):
//
//	σ[x : P(x, Y′)](X)  with Y′ = σ[y : Q(x,y)](Y)
//	⇒ π_SCH(X)(σ[x : P′]( ν_{SCH(Y)→ys}(X ⟕(x,y:Q) Y) ))
//	  with P′ = P[Y′ := x.ys − {⟨null,…,null⟩}]
//
// The left outer join pads dangling X tuples with an all-null Y tuple, so
// grouping gives them the singleton group {⟨null,…⟩}; subtracting the null
// tuple restores the empty set. Unlike the inner-join variant this is
// correct for every predicate P — no Table 3 guard needed — at the cost of
// a wider join and the extra set difference.
func UnnestByGroupingOuter(e adl.Expr, ctx *Context) (adl.Expr, bool) {
	sel, ok := e.(*adl.Select)
	if !ok {
		return e, false
	}
	schX, ok := ctx.schOf(sel.Src)
	if !ok {
		return e, false
	}
	sq := findSubquery(sel.Pred, sel.Var, adl.FreeVars(e))
	if sq == nil {
		return e, false
	}
	schY, ok := ctx.schOf(sq.Y)
	if !ok {
		return e, false
	}
	for _, a := range schX {
		for _, b := range schY {
			if a == b {
				return e, false
			}
		}
	}

	as := freshAttr("ys", append(append([]string{}, schX...), schY...))
	yv, q, g := sq.YVar, sq.Q, sq.G
	if yv == sel.Var {
		nv := adl.Fresh(yv, sq.Q, sq.Y, sel.Src)
		q = adl.Subst(q, yv, adl.V(nv))
		if g != nil {
			g = adl.Subst(g, yv, adl.V(nv))
		}
		yv = nv
	}
	join := &adl.Join{Kind: adl.Outer, LVar: sel.Var, RVar: yv, On: q, L: sel.Src, R: sq.Y}
	nest := adl.Nu(join, as, schY...)

	// The all-null Y tuple that represents "no match".
	nullTuple := &adl.TupleExpr{}
	for _, b := range schY {
		nullTuple.Names = append(nullTuple.Names, b)
		nullTuple.Elems = append(nullTuple.Elems, adl.C(value.Null{}))
	}
	var repl adl.Expr = &adl.SetOp{Op: adl.Diff,
		L: adl.Dot(adl.V(sel.Var), as),
		R: adl.SetOf(nullTuple)}
	// A map layer re-applies after the null padding is subtracted.
	if g != nil {
		repl = adl.MapE(yv, g, repl)
	}
	p := replaceExpr(sel.Pred, sq.S, repl)
	p = wrapWholeVar(p, sel.Var, schX)
	return adl.Proj(adl.Sel(sel.Var, p, nest), schX...), true
}
