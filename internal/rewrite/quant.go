package rewrite

import (
	"repro/internal/adl"
)

// QuantRules simplify quantifier range expressions and implement the
// quantifier-exchange heuristic of Rewriting Example 3: to enable
// unnesting, quantification over base tables is moved to the left (outward)
// in the prenex form, past quantifiers over set-valued attributes.
func QuantRules() []Rule {
	return []Rule{
		{Name: "range-select", Apply: rangeSelect},
		{Name: "range-map", Apply: rangeMap},
		{Name: "range-union", Apply: rangeUnion},
		{Name: "range-intersect", Apply: rangeIntersect},
		{Name: "quant-exchange", Apply: quantExchange},
		{Name: "forall-notexists-exchange", Apply: forallNotExistsExchange},
		{Name: "exists-hoist", Apply: existsHoist},
		{Name: "contract-in", Apply: contractIn},
	}
}

// rangeIntersect turns an intersection range into a membership test so that
// the base-table side becomes the quantifier range:
//
//	∃y ∈ (A ∩ B) • p  ⇒  ∃y ∈ B • y ∈ A ∧ p      (B mentions a base table)
//	∀y ∈ (A ∩ B) • p  ⇒  ∀y ∈ B • ¬(y ∈ A) ∨ p
func rangeIntersect(e adl.Expr, _ *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Quant)
	if !ok {
		return e, false
	}
	is, ok := n.Src.(*adl.SetOp)
	if !ok || is.Op != adl.Intersect {
		return e, false
	}
	rng, other := is.R, is.L
	if !ContainsTable(rng) {
		rng, other = is.L, is.R
	}
	if !ContainsTable(rng) {
		return e, false
	}
	mem := adl.CmpE(adl.In, adl.V(n.Var), other)
	if n.Kind == adl.Exists {
		return adl.Ex(n.Var, rng, adl.AndE(mem, n.Pred)), true
	}
	return adl.All(n.Var, rng, adl.OrE(adl.NotE(mem), n.Pred)), true
}

// forallNotExistsExchange implements the quantifier exchange through a
// negation (the shape Rewriting Example 3 reaches after the inner universal
// has been converted):
//
//	∀z ∈ C • ¬∃y ∈ Y • p  ⟺  ¬∃z ∈ C • ∃y ∈ Y • p  ⟺  ¬∃y ∈ Y • ∃z ∈ C • p
//
// applied when Y mentions a base table, C does not, and Y is independent of
// z — yielding the paper's ∄y ∈ Y′ • ∃z ∈ x.c • y ∉ z directly.
func forallNotExistsExchange(e adl.Expr, _ *Context) (adl.Expr, bool) {
	outer, ok := e.(*adl.Quant)
	if !ok || outer.Kind != adl.Forall || ContainsTable(outer.Src) {
		return e, false
	}
	not, ok := outer.Pred.(*adl.Not)
	if !ok {
		return e, false
	}
	inner, ok := not.X.(*adl.Quant)
	if !ok || inner.Kind != adl.Exists || !ContainsTable(inner.Src) {
		return e, false
	}
	if adl.HasFree(inner.Src, outer.Var) {
		return e, false
	}
	iv, ip := inner.Var, inner.Pred
	if iv == outer.Var || adl.HasFree(outer.Src, iv) {
		nv := adl.Fresh(iv, outer.Src, inner.Pred, inner.Src)
		ip = adl.Subst(ip, iv, adl.V(nv))
		iv = nv
	}
	return adl.NotE(adl.Ex(iv, inner.Src,
		adl.Ex(outer.Var, outer.Src, ip))), true
}

// existsHoist pulls conjuncts that do not depend on the quantified variable
// out of an existential predicate: ∃x ∈ e • (p ∧ c) ⇒ c ∧ ∃x ∈ e • p when x
// is not free in c. (Sound also for empty e: both sides are false.) This
// exposes selections that can be pushed into join operands.
func existsHoist(e adl.Expr, _ *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Quant)
	if !ok || n.Kind != adl.Exists {
		return e, false
	}
	cs := conjuncts(n.Pred)
	if len(cs) < 2 {
		return e, false
	}
	var in, out []adl.Expr
	for _, c := range cs {
		if adl.HasFree(c, n.Var) {
			in = append(in, c)
		} else {
			out = append(out, c)
		}
	}
	if len(out) == 0 || len(in) == 0 {
		return e, false
	}
	return adl.AndE(andOf(out), adl.Ex(n.Var, n.Src, andOf(in))), true
}

// contractIn is the inverse of the Table 1 membership expansion, applied to
// ranges without base tables: ∃y ∈ c • y = e ⇒ e ∈ c. It undoes expansion
// residue over set-valued attributes, restoring the paper's compact
// p[pid] ∈ s.parts join predicates. (No loop with expand-in, which requires
// a base table in the range.)
func contractIn(e adl.Expr, _ *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Quant)
	if !ok || n.Kind != adl.Exists || ContainsTable(n.Src) {
		return e, false
	}
	cmp, ok := n.Pred.(*adl.Cmp)
	if !ok || cmp.Op != adl.Eq {
		return e, false
	}
	var other adl.Expr
	if v, isVar := cmp.L.(*adl.Var); isVar && v.Name == n.Var {
		other = cmp.R
	} else if v, isVar := cmp.R.(*adl.Var); isVar && v.Name == n.Var {
		other = cmp.L
	} else {
		return e, false
	}
	if adl.HasFree(other, n.Var) {
		return e, false
	}
	return adl.CmpE(adl.In, other, n.Src), true
}

// rangeSelect removes a selection from a quantifier range (the second step
// of Rewriting Example 1):
//
//	∃y ∈ σ[v : q](Y) • p  ⇒  ∃y ∈ Y • q[v:=y] ∧ p
//	∀y ∈ σ[v : q](Y) • p  ⇒  ∀y ∈ Y • ¬q[v:=y] ∨ p
func rangeSelect(e adl.Expr, _ *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Quant)
	if !ok {
		return e, false
	}
	sel, ok := n.Src.(*adl.Select)
	if !ok {
		return e, false
	}
	q := adl.Subst(sel.Pred, sel.Var, adl.V(n.Var))
	if n.Kind == adl.Exists {
		return adl.Ex(n.Var, sel.Src, adl.AndE(q, n.Pred)), true
	}
	return adl.All(n.Var, sel.Src, adl.OrE(adl.NotE(q), n.Pred)), true
}

// rangeMap removes a map from a quantifier range by substituting the mapped
// expression into the predicate:
//
//	Qy ∈ α[v : f](Y) • p  ⇒  Qv ∈ Y • p[y := f]
//
// (sound for both quantifiers because α preserves exactly the images of Y's
// elements; duplicates are irrelevant to quantification).
func rangeMap(e adl.Expr, _ *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Quant)
	if !ok {
		return e, false
	}
	m, ok := n.Src.(*adl.Map)
	if !ok {
		return e, false
	}
	// The predicate must not capture the map variable.
	v, body := m.Var, m.Body
	if adl.HasFree(n.Pred, v) {
		nv := adl.Fresh(v, n.Pred, m.Body, m.Src)
		body = adl.Subst(body, v, adl.V(nv))
		v = nv
	}
	return &adl.Quant{Kind: n.Kind, Var: v, Src: m.Src,
		Pred: adl.Subst(n.Pred, n.Var, body)}, true
}

// rangeUnion distributes quantification over a union:
//
//	∃y ∈ (A ∪ B) • p  ⇒  (∃y ∈ A • p) ∨ (∃y ∈ B • p)
//	∀y ∈ (A ∪ B) • p  ⇒  (∀y ∈ A • p) ∧ (∀y ∈ B • p)
func rangeUnion(e adl.Expr, _ *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Quant)
	if !ok {
		return e, false
	}
	u, ok := n.Src.(*adl.SetOp)
	if !ok || u.Op != adl.Union {
		return e, false
	}
	a := &adl.Quant{Kind: n.Kind, Var: n.Var, Src: u.L, Pred: n.Pred}
	b := &adl.Quant{Kind: n.Kind, Var: n.Var, Src: u.R, Pred: n.Pred}
	if n.Kind == adl.Exists {
		return adl.OrE(a, b), true
	}
	return adl.AndE(a, b), true
}

// quantExchange swaps adjacent like quantifiers to move base-table ranges
// outward (Rewriting Example 3's ∀z ∈ x.c • ∀y ∈ Y′ • p ⇒ ∀y ∈ Y′ • ∀z ∈
// x.c • p). The exchange is valid when the quantifiers have the same kind
// and the inner range does not depend on the outer variable; it is applied
// only when it moves a base table outward past a non-table range, which also
// guarantees termination.
func quantExchange(e adl.Expr, _ *Context) (adl.Expr, bool) {
	outer, ok := e.(*adl.Quant)
	if !ok {
		return e, false
	}
	inner, ok := outer.Pred.(*adl.Quant)
	if !ok || inner.Kind != outer.Kind {
		return e, false
	}
	if ContainsTable(outer.Src) || !ContainsTable(inner.Src) {
		return e, false
	}
	if adl.HasFree(inner.Src, outer.Var) {
		return e, false
	}
	// Avoid variable collision after the swap.
	iv, ip := inner.Var, inner.Pred
	if iv == outer.Var || adl.HasFree(outer.Src, iv) {
		nv := adl.Fresh(iv, outer.Src, inner.Pred, inner.Src)
		ip = adl.Subst(ip, iv, adl.V(nv))
		iv = nv
	}
	return &adl.Quant{Kind: outer.Kind, Var: iv, Src: inner.Src,
		Pred: &adl.Quant{Kind: outer.Kind, Var: outer.Var, Src: outer.Src, Pred: ip}}, true
}
