package rewrite

import (
	"repro/internal/adl"
	"repro/internal/value"
)

// TV is a three-valued static truth value used by the Table 3 analysis.
type TV uint8

// Truth values: statically false, statically true, or run-time dependent
// (the paper's "?" entries in Table 3).
const (
	TVUnknown TV = iota
	TVFalse
	TVTrue
)

func (t TV) String() string {
	switch t {
	case TVFalse:
		return "false"
	case TVTrue:
		return "true"
	}
	return "?"
}

// ReduceWithEmpty substitutes the empty set for the subquery expression
// target inside pred and statically reduces the result. This is the paper's
// §5.2.2 analysis: "the value of the expression P(x, ∅) … determines whether
// or not dangling tuples should be included into the result". Unnesting by
// grouping is guaranteed correct only when the result is TVFalse (dangling
// tuples contribute nothing); TVTrue means every dangling tuple belongs in
// the result (all are lost — the Complex Object bug); TVUnknown means the
// decision is run-time dependent.
func ReduceWithEmpty(pred, target adl.Expr) TV {
	p := replaceExpr(pred, target, adl.C(value.EmptySet()))
	return Reduce(p)
}

// Reduce statically evaluates a boolean expression to a three-valued truth
// value. It understands quantifiers and comparisons against statically empty
// sets, count of the empty set, and Kleene boolean algebra; everything else
// is unknown.
func Reduce(e adl.Expr) TV {
	switch n := e.(type) {
	case *adl.Const:
		if b, ok := n.Val.(value.Bool); ok {
			if bool(b) {
				return TVTrue
			}
			return TVFalse
		}
		return TVUnknown

	case *adl.Not:
		switch Reduce(n.X) {
		case TVTrue:
			return TVFalse
		case TVFalse:
			return TVTrue
		}
		return TVUnknown

	case *adl.And:
		l, r := Reduce(n.L), Reduce(n.R)
		switch {
		case l == TVFalse || r == TVFalse:
			return TVFalse
		case l == TVTrue && r == TVTrue:
			return TVTrue
		}
		return TVUnknown

	case *adl.Or:
		l, r := Reduce(n.L), Reduce(n.R)
		switch {
		case l == TVTrue || r == TVTrue:
			return TVTrue
		case l == TVFalse && r == TVFalse:
			return TVFalse
		}
		return TVUnknown

	case *adl.Quant:
		if staticallyEmptySet(n.Src) {
			// ∃ over ∅ is false; ∀ over ∅ is true.
			if n.Kind == adl.Exists {
				return TVFalse
			}
			return TVTrue
		}
		return TVUnknown

	case *adl.Cmp:
		return reduceCmp(n)
	}
	return TVUnknown
}

// reduceCmp reduces comparisons with statically-known operands; the set
// comparator rows reproduce the paper's Table 3.
func reduceCmp(n *adl.Cmp) TV {
	l := foldConst(n.L)
	r := foldConst(n.R)
	lEmpty := staticallyEmptySet(l)
	rEmpty := staticallyEmptySet(r)
	lc, lIsConst := l.(*adl.Const)
	rc, rIsConst := r.(*adl.Const)

	switch n.Op {
	case adl.Eq:
		if lIsConst && rIsConst {
			if value.Equal(lc.Val, rc.Val) {
				return TVTrue
			}
			return TVFalse
		}
		// x.c = ∅ is run-time dependent (Table 3).
		return TVUnknown
	case adl.Ne:
		if lIsConst && rIsConst {
			if value.Equal(lc.Val, rc.Val) {
				return TVFalse
			}
			return TVTrue
		}
		return TVUnknown
	case adl.In:
		if rEmpty {
			return TVFalse // nothing is a member of ∅
		}
	case adl.Sub:
		if rEmpty {
			return TVFalse // x.c ⊂ ∅ is false (Table 3)
		}
		if lEmpty && !rEmpty && rIsConst {
			return TVTrue // ∅ ⊂ nonempty-constant
		}
	case adl.SubEq:
		if lEmpty {
			return TVTrue // ∅ ⊆ anything
		}
		// x.c ⊆ ∅ is run-time dependent (true iff x.c = ∅; Table 3).
	case adl.Sup:
		if lEmpty {
			return TVFalse // ∅ ⊃ anything is false
		}
		// x.c ⊃ ∅ is run-time dependent (true iff x.c ≠ ∅; Table 3).
	case adl.SupEq:
		if rEmpty {
			return TVTrue // x.c ⊇ ∅ (Table 3)
		}
		if lEmpty {
			return TVUnknown // ∅ ⊇ r: true iff r = ∅
		}
	case adl.Has:
		if lEmpty {
			return TVFalse // ∅ contains nothing
		}
		// x.c ∋ ∅ is run-time dependent (Table 3).
	case adl.Lt, adl.Le, adl.Gt, adl.Ge:
		if lIsConst && rIsConst && lc.Val.Kind() == rc.Val.Kind() {
			c := value.Compare(lc.Val, rc.Val)
			switch n.Op {
			case adl.Lt:
				return boolTV(c < 0)
			case adl.Le:
				return boolTV(c <= 0)
			case adl.Gt:
				return boolTV(c > 0)
			case adl.Ge:
				return boolTV(c >= 0)
			}
		}
	}
	return TVUnknown
}

func boolTV(b bool) TV {
	if b {
		return TVTrue
	}
	return TVFalse
}

// foldConst performs the small constant folding the analysis needs:
// aggregates over statically empty sets and empty set constructors.
func foldConst(e adl.Expr) adl.Expr {
	switch n := e.(type) {
	case *adl.SetExpr:
		if len(n.Elems) == 0 {
			return adl.C(value.EmptySet())
		}
	case *adl.Agg:
		if staticallyEmptySet(foldConst(n.X)) {
			switch n.Op {
			case adl.Count:
				return adl.CInt(0)
			case adl.Sum:
				return adl.CInt(0)
			}
		}
	}
	return e
}
