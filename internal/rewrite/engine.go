// Package rewrite implements the paper's core contribution: the logical
// optimization of nested ADL expressions. Nested OOSQL queries translate
// into nested algebraic expressions (tuple-oriented, nested-loop
// processing); the rules in this package transform them into set-oriented
// join queries. The rule inventory follows the paper:
//
//   - Table 1 / Table 2: rewriting set comparison operations between query
//     blocks into quantifier expressions (table1.go)
//   - range simplification and the quantifier-exchange heuristic of
//     Rewriting Example 3 (quant.go)
//   - Rule 1: unnesting quantifier expressions into semijoins and antijoins,
//     and Rule 2: nested map to join (join.go)
//   - Option "unnesting of attributes": μ-based unnesting when the final
//     nest can be skipped (unnestattr.go)
//   - Option "new operators": nestjoin introduction (nestjoin.go)
//   - the [GaWo87] unnesting-by-grouping transformation with the Table 3
//     static analysis P(x, ∅) guarding against the Complex Object bug
//     (grouping.go, emptyeval.go)
//   - the §4 priority strategy combining all options (strategy.go)
package rewrite

import (
	"fmt"

	"repro/internal/adl"
	"repro/internal/types"
)

// Context carries schema information and fresh-name state through rewriting.
type Context struct {
	// Resolver supplies base table and class types; may be nil, in which
	// case type-dependent rules (nestjoin, attribute unnest, grouping) do
	// not fire.
	Resolver adl.TypeResolver
	// Env types the free variables of the expression being rewritten.
	Env adl.TypeEnv
}

// clone returns a copy of the context with an extended environment.
func (ctx *Context) bind(name string, t types.Type) *Context {
	env := make(adl.TypeEnv, len(ctx.Env)+1)
	for k, v := range ctx.Env {
		env[k] = v
	}
	env[name] = t
	return &Context{Resolver: ctx.Resolver, Env: env}
}

// typeOf statically types e in the current context.
func (ctx *Context) typeOf(e adl.Expr) (types.Type, error) {
	if ctx.Resolver == nil {
		return nil, fmt.Errorf("rewrite: no type resolver")
	}
	return adl.Infer(e, ctx.Env, ctx.Resolver)
}

// schOf returns the attribute names of a table-typed expression, or false.
func (ctx *Context) schOf(e adl.Expr) ([]string, bool) {
	t, err := ctx.typeOf(e)
	if err != nil {
		return nil, false
	}
	names, err := types.SCH(types.Erase(t))
	if err != nil {
		return nil, false
	}
	return names, true
}

// elemOf returns the element type of a set-typed expression.
func (ctx *Context) elemOf(e adl.Expr) (types.Type, bool) {
	t, err := ctx.typeOf(e)
	if err != nil {
		return nil, false
	}
	st, ok := t.(*types.Set)
	if !ok {
		return nil, false
	}
	return st.Elem, true
}

// Rule is a local rewrite: it either returns a replacement and true, or its
// input unchanged and false. Rules must be semantics-preserving (validated
// against the reference evaluator by the package tests).
type Rule struct {
	Name  string
	Apply func(e adl.Expr, ctx *Context) (adl.Expr, bool)
}

// Step records one rule firing for explanation output.
type Step struct {
	Rule   string
	Before string
	After  string
}

// Engine applies a rule list bottom-up to a fixpoint.
type Engine struct {
	Rules []Rule
	// MaxSteps bounds total rule firings as a termination backstop.
	MaxSteps int
	// Trace accumulates the steps of the last Run.
	Trace []Step

	steps int
}

// NewEngine builds an engine over the rules with a generous step budget.
func NewEngine(rules []Rule) *Engine {
	return &Engine{Rules: rules, MaxSteps: 10000}
}

// Run rewrites e to a fixpoint of the engine's rules.
func (en *Engine) Run(e adl.Expr, ctx *Context) adl.Expr {
	en.steps = 0
	for {
		next := en.pass(e, ctx)
		if adl.Equal(next, e) || en.steps >= en.MaxSteps {
			return next
		}
		e = next
	}
}

// pass performs one bottom-up traversal, applying rules exhaustively at each
// node on the way up. Binder types are threaded into the context so rules
// can call typeOf on open subexpressions.
func (en *Engine) pass(e adl.Expr, ctx *Context) adl.Expr {
	e = en.rebuild(e, ctx)
	for en.steps < en.MaxSteps {
		fired := false
		for _, r := range en.Rules {
			out, ok := r.Apply(e, ctx)
			if !ok {
				continue
			}
			en.Trace = append(en.Trace, Step{Rule: r.Name, Before: e.String(), After: out.String()})
			en.steps++
			// The replacement may expose further work in its children.
			e = en.rebuild(out, ctx)
			fired = true
			break
		}
		if !fired {
			return e
		}
	}
	return e
}

// rebuild recursively rewrites the children of e, extending the type
// environment under binders.
func (en *Engine) rebuild(e adl.Expr, ctx *Context) adl.Expr {
	switch n := e.(type) {
	case *adl.Map:
		src := en.pass(n.Src, ctx)
		bctx := ctx.bindElem(n.Var, src)
		return &adl.Map{Var: n.Var, Body: en.pass(n.Body, bctx), Src: src}
	case *adl.Select:
		src := en.pass(n.Src, ctx)
		bctx := ctx.bindElem(n.Var, src)
		return &adl.Select{Var: n.Var, Pred: en.pass(n.Pred, bctx), Src: src}
	case *adl.Quant:
		src := en.pass(n.Src, ctx)
		bctx := ctx.bindElem(n.Var, src)
		return &adl.Quant{Kind: n.Kind, Var: n.Var, Src: src, Pred: en.pass(n.Pred, bctx)}
	case *adl.Let:
		val := en.pass(n.Val, ctx)
		var bctx *Context
		if t, err := ctx.typeOf(val); err == nil {
			bctx = ctx.bind(n.Var, t)
		} else {
			bctx = ctx.bind(n.Var, types.Bottom)
		}
		return &adl.Let{Var: n.Var, Val: val, Body: en.pass(n.Body, bctx)}
	case *adl.Join:
		l := en.pass(n.L, ctx)
		r := en.pass(n.R, ctx)
		bctx := ctx.bindElem(n.LVar, l).bindElem(n.RVar, r)
		j := &adl.Join{Kind: n.Kind, LVar: n.LVar, RVar: n.RVar,
			On: en.pass(n.On, bctx), As: n.As, L: l, R: r}
		if n.RFun != nil {
			j.RFun = en.pass(n.RFun, bctx)
		}
		return j
	default:
		return adl.Rebuild(e, func(c adl.Expr) adl.Expr { return en.pass(c, ctx) })
	}
}

// bindElem binds name to the element type of the (set-typed) source
// expression, or to ⊥ when the type cannot be determined; type-dependent
// rules then skip.
func (ctx *Context) bindElem(name string, src adl.Expr) *Context {
	if elem, ok := ctx.elemOf(src); ok {
		return ctx.bind(name, elem)
	}
	return ctx.bind(name, types.Bottom)
}

// ContainsTable reports whether any base table reference occurs in e.
func ContainsTable(e adl.Expr) bool {
	return adl.CountNodes(e, func(x adl.Expr) bool {
		_, ok := x.(*adl.Table)
		return ok
	}) > 0
}

// NestedTableCount is the §3 optimization objective: the number of base
// table references occurring nested within parameter expressions of
// iterators (the predicate of σ and joins, the body of α, the predicate of
// quantifiers, nestjoin functions). The goal of rewriting is to drive this
// to zero, so base tables occur only at top level.
func NestedTableCount(e adl.Expr) int {
	count := 0
	var walk func(e adl.Expr, inParam bool)
	countTables := func(e adl.Expr) int {
		return adl.CountNodes(e, func(x adl.Expr) bool {
			_, ok := x.(*adl.Table)
			return ok
		})
	}
	walk = func(e adl.Expr, inParam bool) {
		switch n := e.(type) {
		case *adl.Table:
			if inParam {
				count++
			}
		case *adl.Map:
			walk(n.Src, inParam)
			count += countTables(n.Body)
		case *adl.Select:
			walk(n.Src, inParam)
			count += countTables(n.Pred)
		case *adl.Quant:
			// A quantifier is itself an iterator: its range is an operand
			// position, its predicate a parameter expression.
			walk(n.Src, inParam)
			count += countTables(n.Pred)
		case *adl.Join:
			walk(n.L, inParam)
			walk(n.R, inParam)
			count += countTables(n.On)
			if n.RFun != nil {
				count += countTables(n.RFun)
			}
		default:
			for _, c := range adl.Children(e) {
				walk(c, inParam)
			}
		}
	}
	walk(e, false)
	return count
}
