package rewrite

import (
	"strings"
	"testing"

	"repro/internal/adl"
	"repro/internal/bench"
	"repro/internal/eval"
	"repro/internal/types"
	"repro/internal/value"
)

// figureCtx is a context for the Figure 1/2 tables:
// X : {(a: int, c: {(d: int, e: int)})}, Y : {(d: int, e: int)}.
func figureCtx() *Context {
	de := types.NewTuple("d", types.IntType, "e", types.IntType)
	return NewStaticContext(map[string]*types.Tuple{
		"X": types.NewTuple("a", types.IntType, "c", types.NewSet(de)),
		"Y": de,
	})
}

// mustEq asserts eval-equality of two expressions on a database.
func mustEq(t *testing.T, db eval.DB, a, b adl.Expr) {
	t.Helper()
	va, err := eval.Eval(a, nil, db)
	if err != nil {
		t.Fatalf("eval(%s): %v", a, err)
	}
	vb, err := eval.Eval(b, nil, db)
	if err != nil {
		t.Fatalf("eval(%s): %v", b, err)
	}
	if !value.Equal(va, vb) {
		t.Fatalf("rewrite changed semantics:\n  original  %s = %v\n  rewritten %s = %v", a, va, b, vb)
	}
}

// relationalEngine runs the option-1 rule set.
func relationalEngine() *Engine { return NewEngine(relationalRules()) }

// TestRewritingExample1 reproduces §5.2.1 Rewriting Example 1 (SET
// MEMBERSHIP): σ[x : x.c ∈ σ[y : q](Y)](X) ⇒ X ⋉(x,y : q ∧ y = x.c) Y.
// Here x.c must be atomic for ∈; we use x.a against Y-tuples' d values via
// the correlation q ≡ y.e = x.a, membership target α-free per the paper's
// abstract q.
func TestRewritingExample1(t *testing.T) {
	// σ[x : (a = x.a) ∈ σ[y : y.e > 1](Y)](X) — the member is the unary
	// tuple (a = x.a) so that the ∈ compares tuples; q is uncorrelated here
	// but may reference x in general.
	q := adl.CmpE(adl.Gt, adl.Dot(adl.V("y"), "e"), adl.CInt(1))
	member := adl.Tup("d", adl.Dot(adl.V("x"), "a"))
	e := adl.Sel("x",
		adl.CmpE(adl.In, member, adl.Proj(adl.Sel("y", q, adl.T("Y")), "d")),
		adl.T("X"))
	// Projection is not removable by our rules; use the map-free form too:
	e2 := adl.Sel("x",
		adl.CmpE(adl.In, adl.Dot(adl.V("x"), "a"),
			adl.MapE("y", adl.Dot(adl.V("y"), "d"), adl.Sel("y", q, adl.T("Y")))),
		adl.T("X"))

	en := relationalEngine()
	got := en.Run(e2, figureCtx())
	j, ok := got.(*adl.Join)
	if !ok || j.Kind != adl.Semi {
		t.Fatalf("RE1 must yield a semijoin, got %s", got)
	}
	if !ContainsTable(j.R) {
		t.Fatalf("semijoin right operand lost the table: %s", got)
	}
	db := bench.Figure2DB()
	mustEq(t, db, e2, got)
	_ = e
}

// TestRewritingExample2 reproduces Rewriting Example 2 (SET INCLUSION):
// σ[x : σ[y : q](Y) ⊆ x.c](X) ⇒ X ▷(x,y : q ∧ y ∉ x.c) Y.
func TestRewritingExample2(t *testing.T) {
	q := adl.EqE(adl.Dot(adl.V("y"), "d"), adl.Dot(adl.V("x"), "a"))
	e := adl.Sel("x",
		adl.CmpE(adl.SubEq, adl.Sel("y", q, adl.T("Y")), adl.Dot(adl.V("x"), "c")),
		adl.T("X"))
	en := relationalEngine()
	got := en.Run(e, figureCtx())
	j, ok := got.(*adl.Join)
	if !ok || j.Kind != adl.Anti {
		t.Fatalf("RE2 must yield an antijoin, got %s", got)
	}
	// The join predicate must be q ∧ ¬(y ∈ x.c) (possibly reordered).
	on := j.On.String()
	if !strings.Contains(on, "∈ x.c)") || !strings.Contains(on, "¬") {
		t.Errorf("RE2 predicate = %s, want q ∧ y ∉ x.c", on)
	}
	mustEq(t, bench.Figure2DB(), e, got)
}

// TestRewritingExample3 reproduces Rewriting Example 3 (EXCHANGING
// QUANTIFIERS): σ[x : ∀z ∈ x.c • z ⊇ σ[y:q](Y)](X) unnests into an antijoin
// whose predicate carries ∃z ∈ x.c • ¬(y ∈ z) — the paper's
// ∄y ∈ Y′ • ∃z ∈ x.c • y ∉ z.
func TestRewritingExample3(t *testing.T) {
	// Here x.c must be a set of sets; build a dedicated DB and context.
	mk := func(vals ...int64) *value.Set {
		s := value.EmptySet()
		for _, v := range vals {
			s.Add(value.Int(v))
		}
		return s
	}
	x := value.NewSet(
		value.NewTuple("a", value.Int(1), "c", value.NewSet(mk(1, 2, 3), mk(1, 2))),
		value.NewTuple("a", value.Int(2), "c", value.NewSet(mk(3))),
		value.NewTuple("a", value.Int(3), "c", value.EmptySet()),
	)
	y := value.NewSet(
		value.NewTuple("d", value.Int(1)),
		value.NewTuple("d", value.Int(2)),
	)
	db := bench.Figure2DB()
	db.Tables["X2"] = x
	db.Tables["Y2"] = y
	ctx := NewStaticContext(map[string]*types.Tuple{
		"X2": types.NewTuple("a", types.IntType, "c", types.NewSet(types.NewSet(types.IntType))),
		"Y2": types.NewTuple("d", types.IntType),
	})

	q := adl.CmpE(adl.Le, adl.Dot(adl.V("y"), "d"), adl.CInt(2))
	sub := adl.MapE("y", adl.Dot(adl.V("y"), "d"), adl.Sel("y", q, adl.T("Y2")))
	e := adl.Sel("x",
		adl.All("z", adl.Dot(adl.V("x"), "c"),
			adl.CmpE(adl.SupEq, adl.V("z"), sub)),
		adl.T("X2"))

	en := relationalEngine()
	got := en.Run(e, ctx)
	j, ok := got.(*adl.Join)
	if !ok || j.Kind != adl.Anti {
		t.Fatalf("RE3 must yield an antijoin, got %s", got)
	}
	if !strings.Contains(j.On.String(), "∃z ∈ x.c") {
		t.Errorf("RE3 predicate must contain the exchanged inner ∃z ∈ x.c, got %s", j.On)
	}
	mustEq(t, db, e, got)
}

// TestTable1SemanticEquivalence validates every Table 1 expansion against
// the reference evaluator on the Figure 2 data, each through the relational
// engine with base-table right-hand sides.
func TestTable1SemanticEquivalence(t *testing.T) {
	db := bench.Figure2DB()
	ctx := figureCtx()
	corr := adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d"))
	sub := adl.Sel("y", corr, adl.T("Y")) // Y′ = σ[y : x.a = y.d](Y)

	preds := map[string]adl.Expr{
		"c_subeq_Y":  adl.CmpE(adl.SubEq, adl.Dot(adl.V("x"), "c"), sub),
		"c_sub_Y":    adl.CmpE(adl.Sub, adl.Dot(adl.V("x"), "c"), sub),
		"c_eq_Y":     adl.EqE(adl.Dot(adl.V("x"), "c"), sub),
		"c_supeq_Y":  adl.CmpE(adl.SupEq, adl.Dot(adl.V("x"), "c"), sub),
		"c_sup_Y":    adl.CmpE(adl.Sup, adl.Dot(adl.V("x"), "c"), sub),
		"Y_subeq_c":  adl.CmpE(adl.SubEq, sub, adl.Dot(adl.V("x"), "c")),
		"not_subeq":  adl.NotE(adl.CmpE(adl.SubEq, adl.Dot(adl.V("x"), "c"), sub)),
		"not_supeq":  adl.NotE(adl.CmpE(adl.SupEq, adl.Dot(adl.V("x"), "c"), sub)),
		"empty_eq":   adl.EqE(sub, adl.SetOf()),
		"count_zero": adl.EqE(adl.AggE(adl.Count, sub), adl.CInt(0)),
		"isect":      adl.EqE(&adl.SetOp{Op: adl.Intersect, L: adl.Dot(adl.V("x"), "c"), R: sub}, adl.SetOf()),
	}
	for name, p := range preds {
		e := adl.Sel("x", p, adl.T("X"))
		en := relationalEngine()
		got := en.Run(e, ctx)
		mustEq(t, db, e, got)
		if name == "c_supeq_Y" || name == "empty_eq" || name == "count_zero" || name == "isect" {
			// These must fully unnest into joins (⊇ and the Table 2 rows).
			if NestedTableCount(got) != 0 {
				t.Errorf("%s: still nested after rewriting: %s", name, got)
			}
		}
	}
}

// TestTable3 reproduces the paper's Table 3: the static value of P(x, ∅)
// for each set comparator, which decides whether unnesting by grouping
// loses dangling tuples.
func TestTable3(t *testing.T) {
	c := adl.Dot(adl.V("x"), "c")
	sub := adl.Sel("y", adl.CBool(true), adl.T("Y")) // stands for Y′
	rows := []struct {
		op   adl.CmpOp
		want TV
	}{
		{adl.Sub, TVFalse},     // x.c ⊂ ∅ ≡ false
		{adl.SubEq, TVUnknown}, // x.c ⊆ ∅: run-time dependent
		{adl.Eq, TVUnknown},    // x.c = ∅: run-time dependent
		{adl.SupEq, TVTrue},    // x.c ⊇ ∅ ≡ true
		{adl.Sup, TVUnknown},   // x.c ⊃ ∅: run-time dependent
		{adl.Has, TVUnknown},   // x.c ∋ ∅: run-time dependent
	}
	for _, row := range rows {
		p := adl.CmpE(row.op, c, sub)
		if got := ReduceWithEmpty(p, sub); got != row.want {
			t.Errorf("Table 3 row %s: P(x, ∅) = %s, want %s", row.op, got, row.want)
		}
	}
	// Membership: x.a ∈ ∅ is statically false (safe for grouping).
	if got := ReduceWithEmpty(adl.CmpE(adl.In, adl.Dot(adl.V("x"), "a"), sub), sub); got != TVFalse {
		t.Errorf("x.a ∈ ∅ = %v, want false", got)
	}
	// count(Y′) = 0 with Y′ = ∅ is statically true.
	if got := ReduceWithEmpty(adl.EqE(adl.AggE(adl.Count, sub), adl.CInt(0)), sub); got != TVTrue {
		t.Errorf("count(∅) = 0 should reduce to true")
	}
	// Negation flips.
	if got := ReduceWithEmpty(adl.NotE(adl.CmpE(adl.SupEq, c, sub)), sub); got != TVFalse {
		t.Errorf("¬(x.c ⊇ ∅) should be false")
	}
}

// TestComplexObjectBug reproduces Figure 2: the [GaWo87] grouping technique
// loses the dangling tuple ⟨a=2, c=∅⟩ on the subset query, the guard
// refuses to apply it, and the nestjoin strategy preserves the tuple.
func TestComplexObjectBug(t *testing.T) {
	db := bench.Figure2DB()
	ctx := figureCtx()
	sub := adl.Sel("y", adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d")), adl.T("Y"))
	query := adl.Sel("x", adl.CmpE(adl.SubEq, adl.Dot(adl.V("x"), "c"), sub), adl.T("X"))

	correct, err := eval.EvalSet(query, nil, db)
	if err != nil {
		t.Fatal(err)
	}
	if correct.Len() != 2 {
		t.Fatalf("nested-loop ground truth = %v, want 2 tuples (a=1 and a=2)", correct)
	}

	// Guarded grouping must refuse: P(x, ∅) = (x.c ⊆ ∅) is run-time
	// dependent.
	if _, ok := UnnestByGrouping(query, ctx, false); ok {
		t.Fatalf("guarded grouping must refuse the ⊆ query (Table 3 row '?')")
	}

	// Forced grouping exhibits the bug.
	buggy, ok := UnnestByGrouping(query, ctx, true)
	if !ok {
		t.Fatalf("forced grouping did not apply")
	}
	buggyRes, err := eval.EvalSet(buggy, nil, db)
	if err != nil {
		t.Fatalf("eval(%s): %v", buggy, err)
	}
	if buggyRes.Len() != 1 {
		t.Fatalf("buggy plan result = %v, want exactly the a=1 tuple", buggyRes)
	}
	lost := correct.Diff(buggyRes)
	if lost.Len() != 1 {
		t.Fatalf("lost = %v", lost)
	}
	lostTuple := lost.Elems()[0].(*value.Tuple)
	if !value.Equal(lostTuple.MustGet("a"), value.Int(2)) {
		t.Errorf("lost tuple = %v, want ⟨a=2, c=∅⟩", lostTuple)
	}

	// The nestjoin strategy handles it correctly.
	res := Optimize(query, ctx)
	if NestedTableCount(res.Expr) != 0 {
		t.Fatalf("Optimize left nesting: %s", res.Expr)
	}
	hasNestjoin := adl.CountNodes(res.Expr, func(e adl.Expr) bool {
		j, ok := e.(*adl.Join)
		return ok && j.Kind == adl.NestJ
	})
	if hasNestjoin == 0 {
		t.Errorf("Optimize should have used the nestjoin, got %s", res.Expr)
	}
	mustEq(t, db, query, res.Expr)
}

// TestGroupingGuardAccepts checks that the guard admits grouping when
// P(x, ∅) is statically false (membership and proper-subset predicates).
func TestGroupingGuardAccepts(t *testing.T) {
	db := bench.Figure2DB()
	ctx := figureCtx()
	sub := adl.Sel("y", adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d")), adl.T("Y"))
	// P = x.c ⊂ Y′: P(x, ∅) ≡ false (Table 3 row 1).
	query := adl.Sel("x", adl.CmpE(adl.Sub, adl.Dot(adl.V("x"), "c"), sub), adl.T("X"))
	grouped, ok := UnnestByGrouping(query, ctx, false)
	if !ok {
		t.Fatalf("guard must accept ⊂ (P(x,∅) ≡ false)")
	}
	mustEq(t, db, query, grouped)
	// The rewritten plan is a flat join query: join, nest, select, project.
	if NestedTableCount(grouped) != 0 {
		t.Errorf("grouping left nesting: %s", grouped)
	}
}

// TestOptimizeEQ5MatchesPaper drives Example Query 5 end to end and expects
// the paper's exact semijoin form:
// SUPPLIER ⋉(s,p : p[pid] ∈ s.parts) σ[p : p.color = "red"](PART).
func TestOptimizeEQ5MatchesPaper(t *testing.T) {
	e := adl.Sel("s",
		adl.Ex("x", adl.Dot(adl.V("s"), "parts"),
			adl.Ex("p", adl.T("PART"),
				adl.AndE(adl.EqE(adl.V("x"), adl.SubT(adl.V("p"), "pid")),
					adl.EqE(adl.Dot(adl.V("p"), "color"), adl.CStr("red"))))),
		adl.T("SUPPLIER"))
	st := bench.Generate(bench.Config{Suppliers: 30, Parts: 40, Seed: 7})
	ctx := NewContext(st.Catalog())
	res := Optimize(e, ctx)
	want := `(SUPPLIER ⋉[s,p : p[pid] ∈ s.parts] σ[p : p.color = "red"](PART))`
	if got := res.Expr.String(); got != want {
		t.Errorf("EQ5 optimized:\n got %s\nwant %s", got, want)
	}
	if res.NestedAfter != 0 {
		t.Errorf("EQ5 still nested: %d", res.NestedAfter)
	}
	mustEq(t, st, e, res.Expr)
}

// TestOptimizeEQ4UsesAttributeUnnest drives Example Query 4 end to end and
// expects the paper's μ + antijoin plan.
func TestOptimizeEQ4UsesAttributeUnnest(t *testing.T) {
	e := adl.MapE("s", adl.Dot(adl.V("s"), "eid"),
		adl.Sel("s",
			adl.Ex("z", adl.Dot(adl.V("s"), "parts"),
				adl.NotE(adl.Ex("p", adl.T("PART"),
					adl.EqE(adl.V("z"), adl.SubT(adl.V("p"), "pid"))))),
			adl.T("SUPPLIER")))
	st := bench.Generate(bench.Config{Suppliers: 30, Parts: 40, DanglingFrac: 0.2, Seed: 11})
	ctx := NewContext(st.Catalog())
	res := Optimize(e, ctx)
	want := `α[s : s.eid]((μ[parts](SUPPLIER) ▷[s,p : s[pid] = p[pid]] PART))`
	if got := res.Expr.String(); got != want {
		t.Errorf("EQ4 optimized:\n got %s\nwant %s", got, want)
	}
	usedUnnest := false
	for _, o := range res.OptionsUsed {
		if o == "attribute-unnest" {
			usedUnnest = true
		}
	}
	if !usedUnnest {
		t.Errorf("EQ4 should use the attribute-unnest option, used %v", res.OptionsUsed)
	}
	mustEq(t, st, e, res.Expr)
}

// TestOptimizeEQ6UsesNestjoin drives Example Query 6 (nesting in the
// select-clause) and expects the paper's nestjoin form.
func TestOptimizeEQ6UsesNestjoin(t *testing.T) {
	e := adl.MapE("s",
		adl.Tup("sname", adl.Dot(adl.V("s"), "sname"),
			"parts_suppl", adl.Sel("p",
				adl.CmpE(adl.In, adl.SubT(adl.V("p"), "pid"), adl.Dot(adl.V("s"), "parts")),
				adl.T("PART"))),
		adl.T("SUPPLIER"))
	st := bench.Generate(bench.Config{Suppliers: 30, Parts: 40, Seed: 13})
	ctx := NewContext(st.Catalog())
	res := Optimize(e, ctx)
	want := `α[s : (sname = s.sname, parts_suppl = s.ys)]((SUPPLIER ⊣[s,p : p[pid] ∈ s.parts ; ys] PART))`
	if got := res.Expr.String(); got != want {
		t.Errorf("EQ6 optimized:\n got %s\nwant %s", got, want)
	}
	mustEq(t, st, e, res.Expr)
}

// TestOptimizeAggregateBetweenBlocks exercises the [Kim82]/[GaWo87] scenario
// — an aggregate between blocks — which must go through the nestjoin (the
// relational rules cannot touch count(Y′) = k for k > 0).
func TestOptimizeAggregateBetweenBlocks(t *testing.T) {
	sub := adl.Sel("p",
		adl.CmpE(adl.In, adl.SubT(adl.V("p"), "pid"), adl.Dot(adl.V("s"), "parts")),
		adl.T("PART"))
	e := adl.Sel("s", adl.EqE(adl.AggE(adl.Count, sub), adl.CInt(2)), adl.T("SUPPLIER"))
	st := bench.Generate(bench.Config{Suppliers: 30, Parts: 10, Fanout: 3, Seed: 17})
	ctx := NewContext(st.Catalog())
	res := Optimize(e, ctx)
	if res.NestedAfter != 0 {
		t.Fatalf("aggregate query still nested: %s", res.Expr)
	}
	if n := adl.CountNodes(res.Expr, func(x adl.Expr) bool {
		j, ok := x.(*adl.Join)
		return ok && j.Kind == adl.NestJ
	}); n == 0 {
		t.Errorf("expected a nestjoin plan, got %s", res.Expr)
	}
	mustEq(t, st, e, res.Expr)
}

// TestCountBugScenario is the classical COUNT bug: suppliers whose subquery
// count equals zero must appear in the result; the nestjoin plan preserves
// them while a forced grouping plan drops them.
func TestCountBugScenario(t *testing.T) {
	st := bench.Generate(bench.Config{Suppliers: 40, Parts: 10, Fanout: 2, EmptyFrac: 0.4, Seed: 23})
	ctx := NewContext(st.Catalog())
	sub := adl.Sel("p",
		adl.CmpE(adl.In, adl.SubT(adl.V("p"), "pid"), adl.Dot(adl.V("s"), "parts")),
		adl.T("PART"))
	e := adl.Sel("s", adl.EqE(adl.AggE(adl.Count, sub), adl.CInt(0)), adl.T("SUPPLIER"))

	correct, err := eval.EvalSet(e, nil, st)
	if err != nil {
		t.Fatal(err)
	}
	if correct.Len() == 0 {
		t.Fatalf("fixture must contain empty suppliers")
	}
	// The relational rules CAN handle count = 0 (Table 2) via an antijoin.
	res := Optimize(e, ctx)
	if res.NestedAfter != 0 {
		t.Fatalf("count=0 must unnest: %s", res.Expr)
	}
	mustEq(t, st, e, res.Expr)
	// Forced grouping on the same query loses every zero-count supplier.
	buggy, ok := UnnestByGrouping(e, ctx, true)
	if !ok {
		t.Fatalf("forced grouping did not apply")
	}
	buggyRes, err := eval.EvalSet(buggy, nil, st)
	if err != nil {
		t.Fatal(err)
	}
	if buggyRes.Len() != 0 {
		t.Errorf("the COUNT bug should lose all zero-count suppliers, kept %d", buggyRes.Len())
	}
}

// TestNestedTableCount pins the optimization objective.
func TestNestedTableCount(t *testing.T) {
	// Top-level tables don't count.
	if n := NestedTableCount(adl.SemiJoin(adl.T("X"), "x", "y", adl.CBool(true), adl.T("Y"))); n != 0 {
		t.Errorf("top-level join operands = %d", n)
	}
	// A table inside a σ predicate counts.
	e := adl.Sel("x", adl.Ex("y", adl.T("Y"), adl.CBool(true)), adl.T("X"))
	if n := NestedTableCount(e); n != 1 {
		t.Errorf("nested quantifier range = %d", n)
	}
	// A table inside an α body counts.
	e2 := adl.MapE("x", adl.Sel("y", adl.CBool(true), adl.T("Y")), adl.T("X"))
	if n := NestedTableCount(e2); n != 1 {
		t.Errorf("nested map body = %d", n)
	}
	// Set-valued attribute iteration does not count.
	e3 := adl.Sel("x", adl.Ex("z", adl.Dot(adl.V("x"), "c"), adl.CBool(true)), adl.T("X"))
	if n := NestedTableCount(e3); n != 0 {
		t.Errorf("attribute iteration = %d", n)
	}
}

// TestTraceRecorded ensures rewrite steps are captured for explanation.
func TestTraceRecorded(t *testing.T) {
	sub := adl.Sel("y", adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d")), adl.T("Y"))
	e := adl.Sel("x", adl.CmpE(adl.In, adl.Dot(adl.V("x"), "a"),
		adl.MapE("y", adl.Dot(adl.V("y"), "d"), sub)), adl.T("X"))
	en := relationalEngine()
	en.Run(e, figureCtx())
	if len(en.Trace) == 0 {
		t.Fatalf("no trace recorded")
	}
	names := map[string]bool{}
	for _, s := range en.Trace {
		names[s.Rule] = true
	}
	for _, want := range []string{"expand-in", "rule1-semijoin"} {
		if !names[want] {
			t.Errorf("trace missing rule %s: %v", want, names)
		}
	}
}

// TestLetInlineAndComposeSelect covers the normalization rules directly.
func TestLetInlineAndComposeSelect(t *testing.T) {
	// Correlated (open) bindings inline; closed table-valued bindings are
	// constants and stay hoisted.
	e := adl.LetE("Y1", adl.Sel("y", adl.EqE(adl.Dot(adl.V("y"), "d"), adl.Dot(adl.V("x"), "a")), adl.T("Y")),
		adl.AggE(adl.Count, adl.V("Y1")))
	en := NewEngine(NormalizeRules())
	got := en.Run(e, figureCtx())
	want := adl.AggE(adl.Count,
		adl.Sel("y", adl.EqE(adl.Dot(adl.V("y"), "d"), adl.Dot(adl.V("x"), "a")), adl.T("Y")))
	if !adl.Equal(got, want) {
		t.Errorf("let-inline = %s", got)
	}
	closed := adl.LetE("Y1", adl.T("Y"),
		adl.Sel("x", adl.EqE(adl.Dot(adl.V("x"), "d"), adl.CInt(1)), adl.V("Y1")))
	if got := en.Run(closed, figureCtx()); !adl.Equal(got, closed) {
		t.Errorf("closed table binding must not inline, got %s", got)
	}
	// σ over σ merges (from-clause unnesting).
	e2 := adl.Sel("d", adl.EqE(adl.Dot(adl.V("d"), "e"), adl.CInt(3)),
		adl.Sel("y", adl.EqE(adl.Dot(adl.V("y"), "d"), adl.CInt(1)), adl.T("Y")))
	got2 := en.Run(e2, figureCtx())
	sel, ok := got2.(*adl.Select)
	if !ok {
		t.Fatalf("compose-select = %s", got2)
	}
	if _, stillNested := sel.Src.(*adl.Select); stillNested {
		t.Errorf("selects not merged: %s", got2)
	}
	mustEq(t, bench.Figure2DB(), e2, got2)
}

// TestRule2JoinDirect covers Rule 2 (nesting in the map operator).
func TestRule2JoinDirect(t *testing.T) {
	// ∪(α[x : α[y : x ∘ y](σ[y : x.a = y.d](Y))](X2)) ⇒ X2 ⋈(x,y:p) Y
	// (X2 is X without the conflicting c attribute).
	db := bench.Figure2DB()
	xFlat := value.NewSet(
		value.NewTuple("a", value.Int(1)),
		value.NewTuple("a", value.Int(2)),
		value.NewTuple("a", value.Int(3)),
	)
	db.Tables["XF"] = xFlat
	ctx := NewStaticContext(map[string]*types.Tuple{
		"XF": types.NewTuple("a", types.IntType),
		"Y":  types.NewTuple("d", types.IntType, "e", types.IntType),
	})
	p := adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d"))
	e := adl.Flat(adl.MapE("x",
		adl.MapE("y", adl.Cat(adl.V("x"), adl.V("y")), adl.Sel("y", p, adl.T("Y"))),
		adl.T("XF")))
	en := relationalEngine()
	got := en.Run(e, ctx)
	j, ok := got.(*adl.Join)
	if !ok || j.Kind != adl.Inner {
		t.Fatalf("Rule 2 must yield a regular join, got %s", got)
	}
	mustEq(t, db, e, got)

	// Reversed concatenation order is also accepted.
	e2 := adl.Flat(adl.MapE("x",
		adl.MapE("y", adl.Cat(adl.V("y"), adl.V("x")), adl.Sel("y", p, adl.T("Y"))),
		adl.T("XF")))
	got2 := relationalEngine().Run(e2, ctx)
	if _, ok := got2.(*adl.Join); !ok {
		t.Fatalf("Rule 2 (reversed ∘) must yield a join, got %s", got2)
	}
	mustEq(t, db, e2, got2)
}

// TestJoinPushdown covers operand selection pushdown on its own.
func TestJoinPushdown(t *testing.T) {
	on := adl.AndE(
		adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d")),
		adl.CmpE(adl.Gt, adl.Dot(adl.V("y"), "e"), adl.CInt(1)),
		adl.CmpE(adl.Lt, adl.Dot(adl.V("x"), "a"), adl.CInt(3)),
	)
	e := adl.SemiJoin(adl.T("X"), "x", "y", on, adl.T("Y"))
	got, ok := joinPushdown(e, figureCtx())
	if !ok {
		t.Fatalf("pushdown did not fire")
	}
	j := got.(*adl.Join)
	if _, isSel := j.R.(*adl.Select); !isSel {
		t.Errorf("right-side predicate not pushed: %s", got)
	}
	if _, isSel := j.L.(*adl.Select); !isSel {
		t.Errorf("left-side predicate not pushed: %s", got)
	}
	mustEq(t, bench.Figure2DB(), e, got)

	// Nestjoin: left-side conjuncts must NOT be pushed (tuple-preserving).
	nj := adl.NestJoin(adl.T("X"), "x", "y", on, "ys", adl.T("Y"))
	got2, ok := joinPushdown(nj, figureCtx())
	if !ok {
		t.Fatalf("nestjoin pushdown did not fire at all")
	}
	j2 := got2.(*adl.Join)
	if _, isSel := j2.L.(*adl.Select); isSel {
		t.Errorf("nestjoin left pushdown is unsound: %s", got2)
	}
	if _, isSel := j2.R.(*adl.Select); !isSel {
		t.Errorf("nestjoin right pushdown missing: %s", got2)
	}
	mustEq(t, bench.Figure2DB(), nj, got2)
}

// TestOuterJoinRepair validates the [GaWo87] outer-join repair of the bug
// on the Figure 2 query: unlike the inner-join grouping, it preserves the
// dangling tuple for every predicate, with no Table 3 guard needed.
func TestOuterJoinRepair(t *testing.T) {
	db := bench.Figure2DB()
	ctx := figureCtx()
	sub := adl.Sel("y", adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d")), adl.T("Y"))

	// Every comparator — including the buggy ⊆ and = cases — is repaired.
	for _, op := range []adl.CmpOp{adl.SubEq, adl.Sub, adl.Eq, adl.SupEq, adl.Sup} {
		query := adl.Sel("x", adl.CmpE(op, adl.Dot(adl.V("x"), "c"), sub), adl.T("X"))
		repaired, ok := UnnestByGroupingOuter(query, ctx)
		if !ok {
			t.Fatalf("%s: outer repair did not apply", op)
		}
		if NestedTableCount(repaired) != 0 {
			t.Errorf("%s: repair left nesting: %s", op, repaired)
		}
		mustEq(t, db, query, repaired)
	}

	// And on generated supplier-part data with empty suppliers.
	st := bench.Generate(bench.Config{Suppliers: 30, Parts: 20, Fanout: 3, EmptyFrac: 0.3, Seed: 5})
	sctx := NewContext(st.Catalog())
	psub := adl.Sel("p", adl.AndE(
		adl.CmpE(adl.In, adl.SubT(adl.V("p"), "pid"), adl.Dot(adl.V("s"), "parts")),
		adl.CmpE(adl.Lt, adl.Dot(adl.V("p"), "price"), adl.CInt(60))),
		adl.T("PART"))
	q2 := adl.Sel("s", adl.EqE(adl.AggE(adl.Count,
		adl.MapE("q", adl.SubT(adl.V("q"), "pid"), psub)), adl.CInt(0)), adl.T("SUPPLIER"))
	_ = q2 // the count-form has a map layer; use the σ-only form below
	q3 := adl.Sel("s", adl.CmpE(adl.SubEq, adl.Dot(adl.V("s"), "parts"),
		adl.MapE("p", adl.Tup("pid", adl.Dot(adl.V("p"), "pid")), psub)), adl.T("SUPPLIER"))
	// Map-layer blocks: the repair re-applies the map after subtracting
	// the null padding.
	repaired3, ok := UnnestByGroupingOuter(q3, sctx)
	if !ok {
		t.Fatalf("outer repair did not apply to the map-layer block")
	}
	mustEq(t, st, q3, repaired3)
	q4 := adl.Sel("s", adl.EqE(adl.AggE(adl.Count, psub), adl.CInt(0)), adl.T("SUPPLIER"))
	repaired, ok := UnnestByGroupingOuter(q4, sctx)
	if !ok {
		t.Fatalf("outer repair did not apply to the count query")
	}
	mustEq(t, st, q4, repaired)
}
