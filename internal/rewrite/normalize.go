package rewrite

import (
	"repro/internal/adl"
)

// NormalizeRules are semantics-preserving clean-ups applied before the
// unnesting phases: with-bindings are inlined, from-clause nesting is
// removed by composing selections (the paper's "nesting in the from-clause
// is handled easily"), and trivial boolean structure is simplified.
func NormalizeRules() []Rule {
	return []Rule{
		{Name: "let-inline", Apply: letInline},
		{Name: "compose-select", Apply: composeSelect},
		{Name: "map-identity", Apply: mapIdentity},
		{Name: "not-not", Apply: notNot},
		{Name: "bool-simplify", Apply: boolSimplify},
	}
}

// letInline substitutes with-bindings at their use sites:
// (body with v = val) ⇒ body[v := val]. Closed bindings that mention a base
// table are kept: they are constants ("uncorrelated subqueries simply are
// constants, and treated as such", §3) and evaluating them once is the
// point — hoistConstant creates exactly such bindings.
func letInline(e adl.Expr, _ *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Let)
	if !ok {
		return e, false
	}
	if ContainsTable(n.Val) && len(adl.FreeVars(n.Val)) == 0 {
		return e, false
	}
	return adl.Subst(n.Body, n.Var, n.Val), true
}

// hoistConstant pulls closed, base-table-mentioning subexpressions out of
// iterator parameters into a with-binding evaluated once:
//
//	σ[x : P(S)](X) ⇒ (σ[x : P(v)](X) with v = S)    S closed, mentions a table
//
// and likewise for α. This removes the nested base table from the iterator
// parameter (the §3 goal) without any join; the constant is computed once
// instead of |X| times.
func hoistConstant(e adl.Expr, _ *Context) (adl.Expr, bool) {
	var param adl.Expr
	switch n := e.(type) {
	case *adl.Select:
		param = n.Pred
	case *adl.Map:
		param = n.Body
	default:
		return e, false
	}
	target := findClosedTableSubexpr(param)
	if target == nil {
		return e, false
	}
	v := adl.Fresh("const", e)
	repl := replaceExpr(param, target, adl.V(v))
	var body adl.Expr
	switch n := e.(type) {
	case *adl.Select:
		body = adl.Sel(n.Var, repl, n.Src)
	case *adl.Map:
		body = adl.MapE(n.Var, repl, n.Src)
	}
	return adl.LetE(v, target, body), true
}

// findClosedTableSubexpr returns the first outermost subexpression of p that
// mentions a base table and has no free variables — a constant subquery.
// The expression must be a proper query block (set-shaped), and quantifier
// ranges are excluded: a closed quantifier range is Rule 1's pattern, and
// hiding it behind a binding would block the semijoin without gaining
// anything (the quantifier would still iterate it per outer tuple).
func findClosedTableSubexpr(p adl.Expr) adl.Expr {
	var found adl.Expr
	var rec func(e adl.Expr)
	rec = func(e adl.Expr) {
		if found != nil {
			return
		}
		if q, ok := e.(*adl.Quant); ok {
			// Skip the range itself; still search inside it and the
			// predicate.
			for _, c := range adl.Children(q.Src) {
				rec(c)
			}
			rec(q.Pred)
			return
		}
		switch e.(type) {
		case *adl.Select, *adl.Map, *adl.Project, *adl.Flatten, *adl.Join,
			*adl.SetOp, *adl.Unnest, *adl.Nest:
			if ContainsTable(e) && len(adl.FreeVars(e)) == 0 {
				found = e
				return
			}
		}
		for _, c := range adl.Children(e) {
			rec(c)
		}
	}
	rec(p)
	return found
}

// composeSelect merges consecutive selections (from-clause unnesting):
// σ[x : p](σ[y : q](E)) ⇒ σ[y : q ∧ p[x := y]](E).
func composeSelect(e adl.Expr, _ *Context) (adl.Expr, bool) {
	outer, ok := e.(*adl.Select)
	if !ok {
		return e, false
	}
	inner, ok := outer.Src.(*adl.Select)
	if !ok {
		return e, false
	}
	// Rename the inner variable if the outer predicate would capture it.
	iv, iq := inner.Var, inner.Pred
	if adl.HasFree(outer.Pred, iv) && iv != outer.Var {
		nv := adl.Fresh(iv, outer.Pred, inner.Pred, inner.Src)
		iq = adl.Subst(iq, iv, adl.V(nv))
		iv = nv
	}
	merged := adl.AndE(iq, adl.Subst(outer.Pred, outer.Var, adl.V(iv)))
	return adl.Sel(iv, merged, inner.Src), true
}

// mapIdentity drops identity maps: α[x : x](E) ⇒ E.
func mapIdentity(e adl.Expr, _ *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Map)
	if !ok {
		return e, false
	}
	if v, isVar := n.Body.(*adl.Var); isVar && v.Name == n.Var {
		return n.Src, true
	}
	return e, false
}

// notNot eliminates double negation.
func notNot(e adl.Expr, _ *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Not)
	if !ok {
		return e, false
	}
	if inner, ok := n.X.(*adl.Not); ok {
		return inner.X, true
	}
	return e, false
}

// boolSimplify folds conjunctions and disjunctions with boolean literals and
// selections with literal predicates.
func boolSimplify(e adl.Expr, _ *Context) (adl.Expr, bool) {
	switch n := e.(type) {
	case *adl.And:
		if isTrue(n.L) {
			return n.R, true
		}
		if isTrue(n.R) {
			return n.L, true
		}
		if isFalse(n.L) {
			return adl.CBool(false), true
		}
		if isFalse(n.R) {
			return adl.CBool(false), true
		}
	case *adl.Or:
		if isFalse(n.L) {
			return n.R, true
		}
		if isFalse(n.R) {
			return n.L, true
		}
		if isTrue(n.L) {
			return adl.CBool(true), true
		}
		if isTrue(n.R) {
			return adl.CBool(true), true
		}
	case *adl.Not:
		if isTrue(n.X) {
			return adl.CBool(false), true
		}
		if isFalse(n.X) {
			return adl.CBool(true), true
		}
	case *adl.Select:
		if isTrue(n.Pred) {
			return n.Src, true
		}
	}
	return e, false
}

// NegationRules push negations inward, exposing the ¬∃ form that Rule 1
// turns into an antijoin (Rewriting Example 2 uses exactly this chain).
func NegationRules() []Rule {
	return []Rule{
		{Name: "not-not", Apply: notNot},
		{Name: "bool-simplify", Apply: boolSimplify},
		{Name: "demorgan-or", Apply: deMorganOr},
		{Name: "demorgan-and", Apply: deMorganAnd},
		{Name: "forall-to-notexists", Apply: forallToNotExists},
		{Name: "notforall-to-exists", Apply: notForallToExists},
		{Name: "negate-comparison", Apply: negateComparison},
	}
}

// notForallToExists rewrites a negated universal over a non-table range into
// existential form: ¬∀z ∈ e • p ⇒ ∃z ∈ e • ¬p. Together with
// forall-to-notexists this yields the paper's ∄y ∈ Y′ • ∃z ∈ x.c • y ∉ z
// shape of Rewriting Example 3. (Restricted to non-table ranges so the two
// rules cannot oscillate.)
func notForallToExists(e adl.Expr, _ *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Not)
	if !ok {
		return e, false
	}
	q, ok := n.X.(*adl.Quant)
	if !ok || q.Kind != adl.Forall || ContainsTable(q.Src) {
		return e, false
	}
	return adl.Ex(q.Var, q.Src, adl.NotE(q.Pred)), true
}

// deMorganOr: ¬(a ∨ b) ⇒ ¬a ∧ ¬b.
func deMorganOr(e adl.Expr, _ *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Not)
	if !ok {
		return e, false
	}
	or, ok := n.X.(*adl.Or)
	if !ok {
		return e, false
	}
	return adl.AndE(adl.NotE(or.L), adl.NotE(or.R)), true
}

// deMorganAnd: ¬(a ∧ b) ⇒ ¬a ∨ ¬b.
func deMorganAnd(e adl.Expr, _ *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Not)
	if !ok {
		return e, false
	}
	and, ok := n.X.(*adl.And)
	if !ok {
		return e, false
	}
	return adl.OrE(adl.NotE(and.L), adl.NotE(and.R)), true
}

// forallToNotExists rewrites universal quantification over a base table into
// negated existential form, the shape the antijoin consumes:
// ∀x ∈ E • p ⇒ ¬∃x ∈ E • ¬p, applied when E mentions a base table.
func forallToNotExists(e adl.Expr, _ *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Quant)
	if !ok || n.Kind != adl.Forall || !ContainsTable(n.Src) {
		return e, false
	}
	return adl.NotE(adl.Ex(n.Var, n.Src, adl.NotE(n.Pred))), true
}

// negateComparison folds negations of atomic comparisons: ¬(a = b) stays (no
// ≠ gain), but ¬(a ≠ b) ⇒ a = b keeps predicates tidy after De Morgan.
func negateComparison(e adl.Expr, _ *Context) (adl.Expr, bool) {
	n, ok := e.(*adl.Not)
	if !ok {
		return e, false
	}
	if cmp, ok := n.X.(*adl.Cmp); ok && cmp.Op == adl.Ne {
		return adl.EqE(cmp.L, cmp.R), true
	}
	return e, false
}
