package rewrite

import (
	"repro/internal/adl"
	"repro/internal/value"
)

// conjuncts flattens nested conjunctions into a list.
func conjuncts(e adl.Expr) []adl.Expr {
	if a, ok := e.(*adl.And); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []adl.Expr{e}
}

// andOf rebuilds a conjunction from a list; an empty list is true.
func andOf(cs []adl.Expr) adl.Expr {
	return adl.AndE(cs...)
}

// isTrue reports whether e is the literal true.
func isTrue(e adl.Expr) bool {
	c, ok := e.(*adl.Const)
	if !ok {
		return false
	}
	b, ok := c.Val.(value.Bool)
	return ok && bool(b)
}

// isFalse reports whether e is the literal false.
func isFalse(e adl.Expr) bool {
	c, ok := e.(*adl.Const)
	if !ok {
		return false
	}
	b, ok := c.Val.(value.Bool)
	return ok && !bool(b)
}

// staticallyEmptySet reports whether e is syntactically the empty set.
func staticallyEmptySet(e adl.Expr) bool {
	switch n := e.(type) {
	case *adl.SetExpr:
		return len(n.Elems) == 0
	case *adl.Const:
		s, ok := n.Val.(*value.Set)
		return ok && s.Len() == 0
	}
	return false
}

// replaceExpr returns e with every occurrence of target replaced by repl.
// Subtrees under binders that rebind a free variable of target are left
// untouched: an occurrence there refers to different bindings and must not
// be replaced.
func replaceExpr(e, target, repl adl.Expr) adl.Expr {
	tfv := adl.FreeVars(target)
	var rec func(e adl.Expr) adl.Expr
	rec = func(e adl.Expr) adl.Expr {
		if adl.Equal(e, target) {
			return repl
		}
		switch n := e.(type) {
		case *adl.Map:
			src := rec(n.Src)
			if tfv[n.Var] {
				return &adl.Map{Var: n.Var, Body: n.Body, Src: src}
			}
			return &adl.Map{Var: n.Var, Body: rec(n.Body), Src: src}
		case *adl.Select:
			src := rec(n.Src)
			if tfv[n.Var] {
				return &adl.Select{Var: n.Var, Pred: n.Pred, Src: src}
			}
			return &adl.Select{Var: n.Var, Pred: rec(n.Pred), Src: src}
		case *adl.Quant:
			src := rec(n.Src)
			if tfv[n.Var] {
				return &adl.Quant{Kind: n.Kind, Var: n.Var, Pred: n.Pred, Src: src}
			}
			return &adl.Quant{Kind: n.Kind, Var: n.Var, Pred: rec(n.Pred), Src: src}
		case *adl.Let:
			val := rec(n.Val)
			if tfv[n.Var] {
				return &adl.Let{Var: n.Var, Val: val, Body: n.Body}
			}
			return &adl.Let{Var: n.Var, Val: val, Body: rec(n.Body)}
		case *adl.Join:
			l, r := rec(n.L), rec(n.R)
			j := &adl.Join{Kind: n.Kind, LVar: n.LVar, RVar: n.RVar, On: n.On,
				As: n.As, RFun: n.RFun, L: l, R: r}
			if !tfv[n.LVar] && !tfv[n.RVar] {
				j.On = rec(n.On)
				if n.RFun != nil {
					j.RFun = rec(n.RFun)
				}
			}
			return j
		default:
			return adl.Rebuild(e, rec)
		}
	}
	return rec(e)
}

// wrapWholeVar replaces free whole-tuple uses of the variable x by
// Subscript(x, attrs): after a nestjoin or grouping rewrite, x denotes the
// widened tuple, so uses of x "as the original tuple" must project back onto
// the original attributes (the paper's z[X]/x substitution). Field and
// subscript accesses are left alone — their attributes still exist on the
// widened tuple.
func wrapWholeVar(e adl.Expr, x string, attrs []string) adl.Expr {
	var rec func(e adl.Expr) adl.Expr
	rec = func(e adl.Expr) adl.Expr {
		switch n := e.(type) {
		case *adl.Var:
			if n.Name == x {
				return adl.SubT(adl.V(x), attrs...)
			}
			return n
		case *adl.Field:
			if v, ok := n.X.(*adl.Var); ok && v.Name == x {
				return n
			}
			return &adl.Field{X: rec(n.X), Name: n.Name}
		case *adl.Subscript:
			if v, ok := n.X.(*adl.Var); ok && v.Name == x {
				return n
			}
			return &adl.Subscript{X: rec(n.X), Attrs: n.Attrs}
		case *adl.Map:
			src := rec(n.Src)
			if n.Var == x {
				return &adl.Map{Var: n.Var, Body: n.Body, Src: src}
			}
			return &adl.Map{Var: n.Var, Body: rec(n.Body), Src: src}
		case *adl.Select:
			src := rec(n.Src)
			if n.Var == x {
				return &adl.Select{Var: n.Var, Pred: n.Pred, Src: src}
			}
			return &adl.Select{Var: n.Var, Pred: rec(n.Pred), Src: src}
		case *adl.Quant:
			src := rec(n.Src)
			if n.Var == x {
				return &adl.Quant{Kind: n.Kind, Var: n.Var, Pred: n.Pred, Src: src}
			}
			return &adl.Quant{Kind: n.Kind, Var: n.Var, Pred: rec(n.Pred), Src: src}
		case *adl.Let:
			val := rec(n.Val)
			if n.Var == x {
				return &adl.Let{Var: n.Var, Val: val, Body: n.Body}
			}
			return &adl.Let{Var: n.Var, Val: val, Body: rec(n.Body)}
		case *adl.Join:
			l, r := rec(n.L), rec(n.R)
			j := &adl.Join{Kind: n.Kind, LVar: n.LVar, RVar: n.RVar, On: n.On,
				As: n.As, RFun: n.RFun, L: l, R: r}
			if n.LVar != x && n.RVar != x {
				j.On = rec(n.On)
				if n.RFun != nil {
					j.RFun = rec(n.RFun)
				}
			}
			return j
		default:
			return adl.Rebuild(e, rec)
		}
	}
	return rec(e)
}

// usesWholeVar reports whether e uses the free variable x other than through
// a field access or subscript.
func usesWholeVar(e adl.Expr, x string) bool {
	wrapped := wrapWholeVar(e, x, []string{"\x00probe"})
	return !adl.Equal(wrapped, e)
}

// freshAttr picks an attribute name based on base that collides with none of
// the taken names.
func freshAttr(base string, taken []string) string {
	used := map[string]bool{}
	for _, t := range taken {
		used[t] = true
	}
	if !used[base] {
		return base
	}
	for i := 1; ; i++ {
		cand := base + string(rune('0'+i%10))
		if i >= 10 {
			cand = base + "_" + string(rune('a'+i-10))
		}
		if !used[cand] {
			return cand
		}
	}
}

// containsField reports whether Field(Var x, attr) occurs free in e (not
// under a rebinding of x).
func containsField(e adl.Expr, x, attr string) bool {
	found := false
	var rec func(e adl.Expr, shadowed bool)
	rec = func(e adl.Expr, shadowed bool) {
		if found {
			return
		}
		switch n := e.(type) {
		case *adl.Field:
			if v, ok := n.X.(*adl.Var); ok && v.Name == x && n.Name == attr && !shadowed {
				found = true
				return
			}
			rec(n.X, shadowed)
		case *adl.Map:
			rec(n.Src, shadowed)
			rec(n.Body, shadowed || n.Var == x)
		case *adl.Select:
			rec(n.Src, shadowed)
			rec(n.Pred, shadowed || n.Var == x)
		case *adl.Quant:
			rec(n.Src, shadowed)
			rec(n.Pred, shadowed || n.Var == x)
		case *adl.Let:
			rec(n.Val, shadowed)
			rec(n.Body, shadowed || n.Var == x)
		case *adl.Join:
			rec(n.L, shadowed)
			rec(n.R, shadowed)
			sh := shadowed || n.LVar == x || n.RVar == x
			rec(n.On, sh)
			if n.RFun != nil {
				rec(n.RFun, sh)
			}
		default:
			for _, c := range adl.Children(e) {
				rec(c, shadowed)
			}
		}
	}
	rec(e, false)
	return found
}
