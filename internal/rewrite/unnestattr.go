package rewrite

import (
	"repro/internal/adl"
	"repro/internal/types"
)

// AttrUnnestRules implement the paper's first optimization option (§4,
// "Unnesting Of Attributes"): if nesting is caused by iteration over a
// set-valued attribute, the attribute can be unnested with μ. The paper
// restricts the option to queries where the final nesting is not required
// and empty set-valued attributes cause no problem; the rule therefore
// matches
//
//	α[x : B](σ[x : ∃z ∈ x.c • p](X))        (B independent of c)
//	π_A(σ[x : ∃z ∈ x.c • p](X))             (c ∉ A)
//
// and rewrites to
//
//	α[x : B](σ[x : p′](μ_c(X)))   /   π_A(σ[x : p′](μ_c(X)))
//
// with p′ = p[z := x[SCH(c)]]. Because the quantifier is existential,
// tuples with empty c — dropped by μ — would fail the predicate anyway, and
// because the result drops c (and set semantics collapse duplicate images),
// no nest operation is needed afterwards. Example Query 4 is the paper's
// use case: the inner ¬∃ over PART subsequently becomes an antijoin via
// Rule 1.
func AttrUnnestRules() []Rule {
	return []Rule{
		{Name: "unnest-attr-map", Apply: unnestAttrMap},
		{Name: "unnest-attr-project", Apply: unnestAttrProject},
	}
}

func unnestAttrMap(e adl.Expr, ctx *Context) (adl.Expr, bool) {
	m, ok := e.(*adl.Map)
	if !ok {
		return e, false
	}
	sel, ok := m.Src.(*adl.Select)
	if !ok {
		return e, false
	}
	// Normalize the two binder names.
	body := m.Body
	if m.Var != sel.Var {
		if adl.HasFree(body, sel.Var) {
			return e, false
		}
		body = adl.Subst(body, m.Var, adl.V(sel.Var))
	}
	out, _, ok := unnestAttrSelect(sel, ctx, body)
	if !ok {
		return e, false
	}
	return out, true
}

func unnestAttrProject(e adl.Expr, ctx *Context) (adl.Expr, bool) {
	pr, ok := e.(*adl.Project)
	if !ok {
		return e, false
	}
	sel, ok := pr.X.(*adl.Select)
	if !ok {
		return e, false
	}
	out, attr, ok := unnestAttrSelect(sel, ctx, nil)
	if !ok {
		return e, false
	}
	// The projection must drop the unnested attribute.
	for _, a := range pr.Attrs {
		if a == attr {
			return e, false
		}
	}
	return adl.Proj(out, pr.Attrs...), true
}

// unnestAttrSelect does the common work: match σ[x : ∃z ∈ x.c • p](X),
// validate the conditions, and build σ[x : p′](μ_c(X)). For the map form it
// returns the rewritten α as well. It reports the unnested attribute name.
func unnestAttrSelect(sel *adl.Select, ctx *Context, mapBody adl.Expr) (adl.Expr, string, bool) {
	q, ok := sel.Pred.(*adl.Quant)
	if !ok || q.Kind != adl.Exists {
		return nil, "", false
	}
	fa, ok := q.Src.(*adl.Field)
	if !ok {
		return nil, "", false
	}
	v, ok := fa.X.(*adl.Var)
	if !ok || v.Name != sel.Var {
		return nil, "", false
	}
	attr := fa.Name
	// Only worthwhile when the predicate still nests a base table — the
	// whole point is to expose it to Rule 1 afterwards.
	if !ContainsTable(q.Pred) {
		return nil, "", false
	}
	// Static schema checks: c is a set of tuples on X, no field conflicts.
	elemT, ok := ctx.elemOf(sel.Src)
	if !ok {
		return nil, "", false
	}
	et, ok := types.Erase(elemT).(*types.Tuple)
	if !ok {
		return nil, "", false
	}
	ct, ok := et.Field(attr)
	if !ok {
		return nil, "", false
	}
	cset, ok := ct.(*types.Set)
	if !ok {
		return nil, "", false
	}
	ctup, ok := cset.Elem.(*types.Tuple)
	if !ok {
		return nil, "", false
	}
	for _, f := range ctup.Fields {
		if _, clash := et.Field(f.Name); clash {
			return nil, "", false
		}
	}
	// The inner predicate may use z and x's other attributes, but not x.c
	// (gone after μ) and not x as a whole tuple.
	if containsField(q.Pred, sel.Var, attr) || usesWholeVar(q.Pred, sel.Var) {
		return nil, "", false
	}
	// The outer consumer must not need c either.
	if mapBody != nil {
		if containsField(mapBody, sel.Var, attr) || usesWholeVar(mapBody, sel.Var) {
			return nil, "", false
		}
	}

	// p′ = p[z := x[SCH(c-elem)]] — after μ, z's attributes live directly on
	// the unnested tuple.
	elemAttrs := make([]string, len(ctup.Fields))
	for i, f := range ctup.Fields {
		elemAttrs[i] = f.Name
	}
	zRepl := adl.SubT(adl.V(sel.Var), elemAttrs...)
	p := adl.Subst(q.Pred, q.Var, zRepl)
	inner := adl.Sel(sel.Var, p, adl.Mu(attr, sel.Src))
	if mapBody != nil {
		return adl.MapE(sel.Var, mapBody, inner), attr, true
	}
	return inner, attr, true
}
