package rewrite

import (
	"repro/internal/adl"
)

// JoinRules implement the paper's Rule 1 (unnesting quantifier expressions
// into semijoins and antijoins) and Rule 2 (nested map to regular join),
// plus standard selection pushdown into join operands.
func JoinRules() []Rule {
	return []Rule{
		{Name: "rule1-semijoin", Apply: rule1SemiJoin},
		{Name: "rule1-antijoin", Apply: rule1AntiJoin},
		{Name: "rule2-join", Apply: rule2Join},
		{Name: "join-pushdown", Apply: joinPushdown},
	}
}

// joinPushdown moves join predicate conjuncts that reference only one
// operand's variable into a selection on that operand, e.g.
// SUPPLIER ⋉(s,p: p[pid] ∈ s.parts ∧ p.color = "red") PART becomes
// SUPPLIER ⋉(s,p: p[pid] ∈ s.parts) σ[p : p.color = "red"](PART)
// — the operand form the paper prints for Example Query 5. Right-side
// pushdown is valid for every join kind (it only thins the match
// candidates); left-side pushdown is valid for inner, semi and anti joins
// but not for tuple-preserving kinds (nestjoin, outer join), where dropping
// left tuples would change the result.
func joinPushdown(e adl.Expr, _ *Context) (adl.Expr, bool) {
	j, ok := e.(*adl.Join)
	if !ok {
		return e, false
	}
	cs := conjuncts(j.On)
	var keep, toL, toR []adl.Expr
	for _, c := range cs {
		usesL := adl.HasFree(c, j.LVar)
		usesR := adl.HasFree(c, j.RVar)
		switch {
		case usesR && !usesL:
			toR = append(toR, c)
		case usesL && !usesR && (j.Kind == adl.Inner || j.Kind == adl.Semi || j.Kind == adl.Anti):
			toL = append(toL, c)
		default:
			keep = append(keep, c)
		}
	}
	if len(toL) == 0 && len(toR) == 0 {
		return e, false
	}
	// Keep at least the constant-true predicate on the join.
	l, r := j.L, j.R
	if len(toL) > 0 {
		l = adl.Sel(j.LVar, andOf(toL), l)
	}
	if len(toR) > 0 {
		r = adl.Sel(j.RVar, andOf(toR), r)
	}
	return &adl.Join{Kind: j.Kind, LVar: j.LVar, RVar: j.RVar, On: andOf(keep),
		As: j.As, RFun: j.RFun, L: l, R: r}, true
}

// rule1SemiJoin implements Rule 1.1: σ[x : ∃y ∈ Y • p](X) ⇒ X ⋉(x,y:p) Y,
// provided Y mentions a base table and x is not free in Y. The matcher is
// conjunction-aware: σ[x : C1 ∧ ... ∧ ∃y∈Y•p ∧ ... ∧ Cn](X) peels the
// quantified conjunct into a semijoin and keeps the rest selected:
// σ[x : rest](X ⋉(x,y:p) Y).
func rule1SemiJoin(e adl.Expr, _ *Context) (adl.Expr, bool) {
	return rule1(e, false)
}

// rule1AntiJoin implements Rule 1.2: σ[x : ¬∃y ∈ Y • p](X) ⇒ X ▷(x,y:p) Y,
// with the same conjunction-aware matching.
func rule1AntiJoin(e adl.Expr, _ *Context) (adl.Expr, bool) {
	return rule1(e, true)
}

func rule1(e adl.Expr, negated bool) (adl.Expr, bool) {
	sel, ok := e.(*adl.Select)
	if !ok {
		return e, false
	}
	cs := conjuncts(sel.Pred)
	for i, c := range cs {
		var q *adl.Quant
		if negated {
			not, isNot := c.(*adl.Not)
			if !isNot {
				continue
			}
			q, _ = not.X.(*adl.Quant)
		} else {
			q, _ = c.(*adl.Quant)
		}
		if q == nil || q.Kind != adl.Exists {
			continue
		}
		if !ContainsTable(q.Src) || adl.HasFree(q.Src, sel.Var) {
			continue
		}
		// Rename the join variable if it collides with the select variable.
		yv, p := q.Var, q.Pred
		if yv == sel.Var {
			nv := adl.Fresh(yv, q.Pred, q.Src, sel.Src)
			p = adl.Subst(p, yv, adl.V(nv))
			yv = nv
		}
		kind := adl.Semi
		if negated {
			kind = adl.Anti
		}
		join := &adl.Join{Kind: kind, LVar: sel.Var, RVar: yv, On: p, L: sel.Src, R: q.Src}
		rest := append(append([]adl.Expr{}, cs[:i]...), cs[i+1:]...)
		if len(rest) == 0 {
			return join, true
		}
		return adl.Sel(sel.Var, andOf(rest), join), true
	}
	return e, false
}

// rule2Join implements Rule 2 (nesting in the map operator):
//
//	∪(α[x : α[y : x ∘ y](σ[y : p](Y))](X)) ⇒ X ⋈(x,y:p) Y
//
// The inner selection is optional (p defaults to true) and the concatenation
// may be written in either order — tuple equality is attribute-order
// insensitive, so X ⋈ Y covers both.
func rule2Join(e adl.Expr, _ *Context) (adl.Expr, bool) {
	fl, ok := e.(*adl.Flatten)
	if !ok {
		return e, false
	}
	outer, ok := fl.X.(*adl.Map)
	if !ok {
		return e, false
	}
	inner, ok := outer.Body.(*adl.Map)
	if !ok {
		return e, false
	}
	// The inner body must be exactly the pair concatenation.
	cc, ok := inner.Body.(*adl.Concat)
	if !ok {
		return e, false
	}
	lv, lok := cc.L.(*adl.Var)
	rv, rok := cc.R.(*adl.Var)
	if !lok || !rok {
		return e, false
	}
	swapped := false
	switch {
	case lv.Name == outer.Var && rv.Name == inner.Var:
	case lv.Name == inner.Var && rv.Name == outer.Var:
		swapped = true
	default:
		return e, false
	}
	_ = swapped
	// Peel an optional selection off the inner source.
	src := inner.Src
	pred := adl.Expr(adl.CBool(true))
	yv := inner.Var
	if s, isSel := src.(*adl.Select); isSel {
		src = s.Src
		pred = adl.Subst(s.Pred, s.Var, adl.V(yv))
	}
	if !ContainsTable(src) || adl.HasFree(src, outer.Var) {
		return e, false
	}
	if yv == outer.Var {
		nv := adl.Fresh(yv, pred, src, outer.Src)
		pred = adl.Subst(pred, yv, adl.V(nv))
		yv = nv
	}
	return &adl.Join{Kind: adl.Inner, LVar: outer.Var, RVar: yv, On: pred,
		L: outer.Src, R: src}, true
}
