package rewrite

import (
	"fmt"
	"testing"

	"repro/internal/adl"
	"repro/internal/bench"
	"repro/internal/eval"
	"repro/internal/value"
)

// queryTemplates is a family of nested queries over the supplier-part
// schema covering every unnesting path: quantifier chains (EQ5), negated
// existentials (EQ4 inner), attribute unnesting, select-clause nesting
// (EQ6), set comparisons between blocks, aggregates between blocks, and
// Table 2 predicates.
func queryTemplates() map[string]adl.Expr {
	s, p, z, x := adl.V("s"), adl.V("p"), adl.V("z"), adl.V("x")
	parts := adl.Dot(s, "parts")
	partsSub := func(pred adl.Expr) adl.Expr { return adl.Sel("p", pred, adl.T("PART")) }
	inParts := adl.CmpE(adl.In, adl.SubT(p, "pid"), parts)

	return map[string]adl.Expr{
		// EQ5: suppliers supplying red parts (σ + ∃∃ chain).
		"eq5": adl.Sel("s",
			adl.Ex("x", parts, adl.Ex("p", adl.T("PART"),
				adl.AndE(adl.EqE(x, adl.SubT(p, "pid")),
					adl.EqE(adl.Dot(p, "color"), adl.CStr("red"))))),
			adl.T("SUPPLIER")),
		// EQ4: referential integrity violations (∃ over attribute, ¬∃ over table).
		"eq4": adl.MapE("s", adl.Dot(s, "eid"),
			adl.Sel("s",
				adl.Ex("z", parts, adl.NotE(adl.Ex("p", adl.T("PART"),
					adl.EqE(z, adl.SubT(p, "pid"))))),
				adl.T("SUPPLIER"))),
		// EQ6: select-clause nesting (nestjoin path).
		"eq6": adl.MapE("s",
			adl.Tup("sname", adl.Dot(s, "sname"), "ps", partsSub(inParts)),
			adl.T("SUPPLIER")),
		// Set comparison between blocks: parts ⊇ red parts' pids.
		"supeq": adl.Sel("s",
			adl.CmpE(adl.SupEq, parts,
				adl.MapE("p", adl.Tup("pid", adl.Dot(p, "pid")),
					partsSub(adl.EqE(adl.Dot(p, "color"), adl.CStr("red"))))),
			adl.T("SUPPLIER")),
		// Subset: all of s's parts are cheap.
		"subeq": adl.Sel("s",
			adl.CmpE(adl.SubEq, parts,
				adl.MapE("p", adl.Tup("pid", adl.Dot(p, "pid")),
					partsSub(adl.CmpE(adl.Lt, adl.Dot(p, "price"), adl.CInt(50))))),
			adl.T("SUPPLIER")),
		// Aggregate between blocks (count = 2, nestjoin path).
		"count2": adl.Sel("s",
			adl.EqE(adl.AggE(adl.Count, partsSub(inParts)), adl.CInt(2)),
			adl.T("SUPPLIER")),
		// Table 2: emptiness (count = 0, antijoin path).
		"count0": adl.Sel("s",
			adl.EqE(adl.AggE(adl.Count, partsSub(inParts)), adl.CInt(0)),
			adl.T("SUPPLIER")),
		// Table 2: empty intersection between an attribute and a block.
		"isect": adl.Sel("s",
			adl.EqE(&adl.SetOp{Op: adl.Intersect,
				L: parts,
				R: adl.MapE("p", adl.Tup("pid", adl.Dot(p, "pid")),
					partsSub(adl.EqE(adl.Dot(p, "color"), adl.CStr("red"))))},
				adl.SetOf()),
			adl.T("SUPPLIER")),
		// Rule 2 shape: flatten of a nested concat map (supplier × its parts).
		"rule2": adl.Flat(adl.MapE("s",
			adl.MapE("p", adl.Cat(adl.SubT(s, "eid", "sname"), adl.V("p")),
				adl.Sel("p", inParts, adl.T("PART"))),
			adl.T("SUPPLIER"))),
		// Uncorrelated subquery: treated as a constant, left alone but must
		// stay correct.
		"uncorrelated": adl.Sel("s",
			adl.CmpE(adl.Gt, adl.AggE(adl.Count,
				adl.Sel("p", adl.EqE(adl.Dot(p, "color"), adl.CStr("red")), adl.T("PART"))),
				adl.CInt(1)),
			adl.T("SUPPLIER")),
		// Three blocks (the paper's "multiple nesting levels"): suppliers
		// with a part that some delivery actually delivered. Rule 1 +
		// pushdown cascade into semijoins of semijoins.
		"threeblock": adl.Sel("s",
			adl.Ex("p", adl.T("PART"), adl.AndE(
				inParts,
				adl.Ex("d", adl.T("DELIVERY"),
					adl.Ex("sp", adl.Dot(adl.V("d"), "supply"),
						adl.EqE(adl.Dot(adl.V("sp"), "part"), adl.Dot(p, "pid")))))),
			adl.T("SUPPLIER")),
	}
}

// TestOptimizePreservesSemantics checks eval(q) == eval(Optimize(q)) for
// every template over randomized databases of varying shape, including ones
// with empty part sets and dangling references.
func TestOptimizePreservesSemantics(t *testing.T) {
	configs := []bench.Config{
		{Suppliers: 20, Parts: 30, Fanout: 4, Seed: 1},
		{Suppliers: 15, Parts: 10, Fanout: 2, EmptyFrac: 0.3, Seed: 2},
		{Suppliers: 25, Parts: 20, Fanout: 6, DanglingFrac: 0.2, Seed: 3},
		{Suppliers: 10, Parts: 5, Fanout: 1, EmptyFrac: 0.5, DanglingFrac: 0.3, Seed: 4},
		{Suppliers: 1, Parts: 1, Fanout: 1, Seed: 5},
	}
	for name, q := range queryTemplates() {
		for ci, cfg := range configs {
			t.Run(fmt.Sprintf("%s/db%d", name, ci), func(t *testing.T) {
				st := bench.Generate(cfg)
				ctx := NewContext(st.Catalog())
				res := Optimize(q, ctx)
				want, err := eval.Eval(q, nil, st)
				if err != nil {
					t.Fatalf("eval original: %v", err)
				}
				got, err := eval.Eval(res.Expr, nil, st)
				if err != nil {
					t.Fatalf("eval optimized %s: %v", res.Expr, err)
				}
				if !value.Equal(want, got) {
					t.Fatalf("semantics changed\n  query: %s\n  plan:  %s\n  want %v\n  got  %v",
						q, res.Expr, want, got)
				}
			})
		}
	}
}

// TestOptimizeUnnestsAllTemplates checks the §3 goal is reached for every
// template that can be unnested: no base table remains inside an iterator
// parameter. The uncorrelated template unnests by constant hoisting.
func TestOptimizeUnnestsAllTemplates(t *testing.T) {
	unnestable := []string{"eq5", "eq4", "eq6", "supeq", "count2", "count0", "isect", "rule2", "uncorrelated", "threeblock"}
	st := bench.Generate(bench.Config{Suppliers: 5, Parts: 5, Seed: 9})
	ctx := NewContext(st.Catalog())
	qs := queryTemplates()
	for _, name := range unnestable {
		res := Optimize(qs[name], ctx)
		if res.NestedAfter != 0 {
			t.Errorf("%s: %d base tables still nested:\n  %s", name, res.NestedAfter, res.Expr)
		}
	}
}

// TestOptimizeIdempotent ensures a second optimization pass is a no-op.
func TestOptimizeIdempotent(t *testing.T) {
	st := bench.Generate(bench.Config{Suppliers: 5, Parts: 5, Seed: 9})
	ctx := NewContext(st.Catalog())
	for name, q := range queryTemplates() {
		once := Optimize(q, ctx)
		twice := Optimize(once.Expr, ctx)
		if !adl.Equal(once.Expr, twice.Expr) {
			t.Errorf("%s: optimization not idempotent:\n  once:  %s\n  twice: %s",
				name, once.Expr, twice.Expr)
		}
	}
}

// TestConstantHoisting: an uncorrelated subquery becomes a with-binding
// evaluated once — observable through the store's extent-scan counter.
func TestConstantHoisting(t *testing.T) {
	st := bench.Generate(bench.Config{Suppliers: 50, Parts: 20, Seed: 7})
	q := queryTemplates()["uncorrelated"]
	res := Optimize(q, NewContext(st.Catalog()))
	if res.NestedAfter != 0 {
		t.Fatalf("uncorrelated subquery not hoisted: %s", res.Expr)
	}
	if _, isLet := res.Expr.(*adl.Let); !isLet {
		t.Fatalf("expected a with-binding at top level, got %s", res.Expr)
	}
	// Naive: PART consulted once per supplier. Hoisted: once.
	st.ResetStats()
	if _, err := eval.Eval(q, nil, st); err != nil {
		t.Fatal(err)
	}
	naiveScans := st.Stats().ExtentScans
	st.ResetStats()
	if _, err := eval.Eval(res.Expr, nil, st); err != nil {
		t.Fatal(err)
	}
	hoistScans := st.Stats().ExtentScans
	if hoistScans >= naiveScans {
		t.Errorf("hoisting did not reduce extent scans: naive %d, hoisted %d", naiveScans, hoistScans)
	}
	if hoistScans > 2 { // PART once + SUPPLIER once
		t.Errorf("hoisted plan scans extents %d times, want ≤ 2", hoistScans)
	}
	mustEqDB(t, st, q, res.Expr)
}

// mustEqDB is mustEq for *storage.Store databases.
func mustEqDB(t *testing.T, db eval.DB, a, b adl.Expr) {
	t.Helper()
	mustEq(t, db, a, b)
}

// TestGroupingEquivalenceWhenGuardAccepts: whenever the Table 3 guard admits
// the [GaWo87] grouping rewrite, the result must agree with nested-loop
// semantics (the guard is exactly the correctness condition).
func TestGroupingEquivalenceWhenGuardAccepts(t *testing.T) {
	s, p := adl.V("s"), adl.V("p")
	parts := adl.Dot(s, "parts")
	sub := adl.MapE("p", adl.Tup("pid", adl.Dot(p, "pid")),
		adl.Sel("p", adl.CmpE(adl.In, adl.SubT(p, "pid"), parts), adl.T("PART")))
	// P(x, Y′) = parts ⊂ Y′ has P(x, ∅) ≡ false: guard accepts.
	q := adl.Sel("s", adl.CmpE(adl.Sub, parts, sub), adl.T("SUPPLIER"))
	for seed := int64(1); seed <= 5; seed++ {
		st := bench.Generate(bench.Config{Suppliers: 12, Parts: 8, Fanout: 3, EmptyFrac: 0.25, Seed: seed})
		ctx := NewContext(st.Catalog())
		grouped, ok := UnnestByGrouping(q, ctx, false)
		if !ok {
			t.Fatalf("guard should accept ⊂")
		}
		want, err := eval.Eval(q, nil, st)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eval.Eval(grouped, nil, st)
		if err != nil {
			t.Fatalf("eval grouped %s: %v", grouped, err)
		}
		if !value.Equal(want, got) {
			t.Fatalf("seed %d: grouping with accepted guard changed semantics\n plan %s", seed, grouped)
		}
	}
}
