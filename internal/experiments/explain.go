package experiments

import (
	"fmt"
	"strings"

	"repro/internal/adl"
	"repro/internal/plan"
	"repro/internal/storage"
)

// ExplainPlans renders the annotated physical plan(s) an experiment is about
// to execute (cmd/adlbench -explain). Experiments whose optimized arm is an
// ADL expression are planned cost-based from freshly collected statistics,
// so the rendering carries the optimizer's per-node row/cost estimates and
// join-order notes; experiments whose arms are hand-built physical operator
// trees (B4, B5, B8) render those trees without annotations. The analyze and
// parallelism arguments mirror the adlbench flags so the printed plan is the
// one the experiment actually runs (B9's threshold fallback under
// -analyze=false, B8's serial control under -parallel 0). Scales are kept
// small — the point is the plan shape, not the timing.
func ExplainPlans(exp string, parallelism int, analyze bool, seed int64) (string, error) {
	var b strings.Builder
	section := func(title string) { fmt.Fprintf(&b, "-- %s\n", title) }
	planned := func(title string, st *storage.Store, e adl.Expr) {
		section(title)
		cfg := plan.Config{Statistics: st.Analyze(), Parallelism: parallelism}
		b.WriteString(cfg.Plan(e).Explain())
	}

	switch exp {
	case "B1":
		w := NewEQ5(100, 200, seed)
		planned(w.Name+" optimized (semijoin form)", w.Store, w.Opt)
	case "B2":
		w := NewEQ4(100, 200, seed)
		planned(w.Name+" optimized (μ+antijoin form)", w.Store, w.Opt)
	case "B3":
		w := NewSubset(100, 60, 0.1, seed)
		planned(w.Name+" optimized (nestjoin form)", w.Store, w.Opt)
	case "B4":
		m := NewMaterialize(100, 200, 8, seed)
		section("B4 nestjoin(set-probe) arm (hand-built physical plan)")
		b.WriteString(plan.Explain(m.NestjoinOp()))
	case "B5":
		p := NewPointerJoin(100, 100, seed)
		section("B5 assembly arm (hand-built physical plan)")
		b.WriteString(plan.Explain(p.AssemblyOp()))
	case "B6":
		_, _, opt := NewForallExchange(50, 50, seed)
		section("B6 exchanged antijoin form (MemDB: no statistics, rule-based plan)")
		b.WriteString(plan.Explain(plan.Compile(opt)))
	case "B7":
		for _, w := range []*Workload{
			NewEQ5(100, 120, seed), NewEQ4(100, 120, seed),
			NewEQ6(25, 120, seed), NewSubset(100, 120, 0.1, seed),
		} {
			planned(w.Name+" optimized", w.Store, w.Opt)
		}
	case "B8":
		p := NewParallelJoin(200, 2000, parallelism, seed)
		if parallelism == 0 {
			section("B8 parallel arm kept serial (-parallel 0 control)")
			b.WriteString(plan.Explain(p.SerialOp()))
		} else {
			section("B8 parallel arm (hand-built physical plan)")
			b.WriteString(plan.Explain(p.ParallelOp()))
		}
	case "B9":
		w := NewStrategyJoin("inner_asym", adl.Inner, 100, 1000, parallelism, seed)
		if err := w.Warm(); err != nil {
			return "", err
		}
		pl, label := w.PlanOptimizer(analyze)
		if analyze {
			section("B9 optimizer arm → " + label)
		} else {
			section("B9 optimizer arm, threshold fallback (-analyze=false) → " + label)
		}
		b.WriteString(pl.Explain())
	case "B10":
		w := NewStarJoin(2000, 200, 60, 8, parallelism, seed)
		if err := w.Warm(); err != nil {
			return "", err
		}
		section(w.Name + " rewriter order (NoReorder baseline)")
		b.WriteString(w.Plan(false).Explain())
		section(w.Name + " enumerated order")
		b.WriteString(w.Plan(true).Explain())
	case "B11":
		w := NewLookupJoin(200, 2000, parallelism, true, seed)
		section(w.Name + " optimizer arm (indexes on)")
		b.WriteString(w.PlanOptimizer().Explain())
		w.Indexed = false
		section(w.Name + " optimizer arm (-indexes=false control)")
		b.WriteString(w.PlanOptimizer().Explain())
	case "B12":
		w := NewSkewJoin(5000, 200, parallelism, seed)
		if err := w.Warm(); err != nil {
			return "", err
		}
		section(w.Name + " NDV-only arm (NoHistograms control)")
		b.WriteString(w.Plan(true).Explain())
		section(w.Name + " histogram arm")
		b.WriteString(w.Plan(false).Explain())
	case "B13":
		w := NewVecJoin(100, 2000, 0, seed)
		section(w.Name + " scalar arm (reference semantics)")
		b.WriteString(w.Plan(false).Explain())
		section(w.Name + " vectorized arm (-vectorized)")
		b.WriteString(w.Plan(true).Explain())
	case "B14":
		w := NewVecJoin(100, 4000, 0, seed)
		section(w.Name + " scalar arm (reference semantics)")
		b.WriteString(w.PlanArm(false, false, parallelism).Explain())
		section(w.Name + " parallel arm (partitioned operators)")
		b.WriteString(w.PlanArm(false, true, parallelism).Explain())
		section(w.Name + " vectorized arm (batch kernels)")
		b.WriteString(w.PlanArm(true, false, parallelism).Explain())
		section(w.Name + " parallel vectorized arm (VecExchange + partitioned batch join)")
		b.WriteString(w.PlanArm(true, true, parallelism).Explain())
	default:
		return "", fmt.Errorf("explain: unknown experiment %q", exp)
	}
	return b.String(), nil
}
