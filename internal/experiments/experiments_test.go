package experiments

import (
	"strings"
	"testing"
)

// The experiment drivers verify result equality internally and fail loudly;
// running them at tiny scales keeps the whole suite under test.

func TestB1(t *testing.T) {
	tab, err := B1([][2]int{{20, 30}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.String(), "semijoin") {
		t.Errorf("table lacks arms:\n%s", tab)
	}
}

func TestB2(t *testing.T) {
	tab, err := B2([][2]int{{20, 30}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestB3LostTuplesGrowWithEmptyFraction(t *testing.T) {
	tab, err := B3(60, 40, []float64{0, 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Column 5 is "lost tuples": zero when nothing dangles, positive at 50%.
	if tab.Rows[0][5] != "0" {
		t.Errorf("no-danging row lost %s tuples", tab.Rows[0][5])
	}
	if tab.Rows[1][5] == "0" {
		t.Errorf("50%% empty row lost no tuples — bug not reproduced")
	}
}

func TestB4BudgetsIncreaseSegments(t *testing.T) {
	tab, err := B4(40, 60, 4, []int{0, 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Last two rows are PNHL at budgets 0 (1 segment) and 10 (≥2 segments).
	n := len(tab.Rows)
	if tab.Rows[n-2][2] != "1" {
		t.Errorf("unlimited budget used %s segments", tab.Rows[n-2][2])
	}
	if tab.Rows[n-1][2] == "1" {
		t.Errorf("tight budget should need multiple segments")
	}
	// unnest-join-nest (row 2) loses the empty suppliers: its size is below
	// the naive result size (row 0).
	if tab.Rows[2][5] >= tab.Rows[0][5] {
		t.Errorf("unnest-join-nest did not lose dangling suppliers: %v vs %v",
			tab.Rows[2][5], tab.Rows[0][5])
	}
}

func TestB5(t *testing.T) {
	tab, err := B5([][2]int{{50, 50}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Object reads equal the delivery count (one deref per reference).
	if tab.Rows[0][6] != "50" {
		t.Errorf("object reads = %s, want 50", tab.Rows[0][6])
	}
}

func TestB6(t *testing.T) {
	if _, err := B6([][2]int{{20, 20}}, 1); err != nil {
		t.Fatal(err)
	}
}

func TestB7ReportsOptions(t *testing.T) {
	tab, err := B7(24, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"relational-join", "attribute-unnest", "nestjoin"} {
		if !strings.Contains(out, want) {
			t.Errorf("B7 table missing option %q:\n%s", want, out)
		}
	}
}

func TestWorkloadArmsAgree(t *testing.T) {
	w := NewEQ5(15, 20, 2)
	a, err := w.RunNaive()
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.RunOpt()
	if err != nil {
		t.Fatal(err)
	}
	c, err := w.RunOptNL()
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() || b.Len() != c.Len() {
		t.Errorf("arm sizes differ: %d %d %d", a.Len(), b.Len(), c.Len())
	}
}

func TestGroupedPlanDerivable(t *testing.T) {
	w := NewSubset(20, 15, 0.2, 3)
	if _, ok := w.GroupedPlan(); !ok {
		t.Fatalf("grouped plan must be derivable for the subset workload")
	}
}

func TestB9OptimizerAgreesWithForcedArms(t *testing.T) {
	tab, err := B9(100, 400, 2, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"inner_asym", "group_small", "group_big", "optimizer→"} {
		if !strings.Contains(out, want) {
			t.Errorf("B9 table missing %q:\n%s", want, out)
		}
	}
	// The asymmetric inner workload must show a non-default optimizer choice
	// (the rule-based planner never swaps the build side).
	if !strings.Contains(out, "build side swapped") {
		t.Errorf("B9 optimizer never swapped the build side:\n%s", out)
	}
}

func TestB10EnumeratedOrderWinsAndAgrees(t *testing.T) {
	// B10 fails internally when any arm diverges from the rule-based
	// reference or when the enumerated order does not price below the
	// rewriter order, so a nil error already is the claim.
	tab, err := B10(1200, 200, 60, 6, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"rewriter order", "enumerated order", "order: dp over 4 relations", "cheaper by the cost model"} {
		if !strings.Contains(out, want) {
			t.Errorf("B10 table missing %q:\n%s", want, out)
		}
	}
}

func TestB11IndexPlanWinsAndAgrees(t *testing.T) {
	// B11 fails internally when any arm diverges, when the optimizer does
	// not choose the index-nested-loop join, or when the index plan is not
	// strictly cheaper in wall time and page reads — a nil error already is
	// the claim.
	tab, err := B11(400, 4000, 2, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"optimizer chose IndexNLJoin", "index probes", "pages vs"} {
		if !strings.Contains(out, want) {
			t.Errorf("B11 table missing %q:\n%s", want, out)
		}
	}
}

func TestB11WithoutIndexesIsInformational(t *testing.T) {
	tab, err := B11(200, 1000, 2, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	if !strings.Contains(out, "-indexes=false control") {
		t.Errorf("B11 title should flag the control mode:\n%s", out)
	}
	if strings.Contains(out, "IndexNLJoin") {
		t.Errorf("B11 without indexes must not plan index operators:\n%s", out)
	}
}

func TestB12HistogramPlanWinsAndAgrees(t *testing.T) {
	// B12 fails internally when either arm diverges from the rule-based
	// reference, when the two arms agree on a join order, or when the
	// histogram plan is not strictly cheaper in wall time and page reads —
	// a nil error already is the claim.
	tab, err := B12(5000, 200, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"ndv (NoHistograms)", "histograms",
		"heavy hitter", "pages vs", "wrong dimension first"} {
		if !strings.Contains(out, want) {
			t.Errorf("B12 table missing %q:\n%s", want, out)
		}
	}
}

func TestSkewJoinArmsAgree(t *testing.T) {
	w := NewSkewJoin(2000, 100, 2, 7)
	ref, err := w.RunReference()
	if err != nil {
		t.Fatal(err)
	}
	for _, noHist := range []bool{false, true} {
		res, pl, err := w.Run(noHist)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != ref.Len() {
			t.Fatalf("noHist=%v: %d rows, reference has %d\n%s",
				noHist, res.Len(), ref.Len(), pl.Explain())
		}
	}
}

func TestStarJoinArmsAgree(t *testing.T) {
	w := NewStarJoin(300, 40, 20, 4, 2, 7)
	ref, err := w.RunReference()
	if err != nil {
		t.Fatal(err)
	}
	for _, reorder := range []bool{false, true} {
		res, pl, err := w.Run(reorder)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != ref.Len() {
			t.Fatalf("reorder=%v: %d rows, reference has %d\n%s",
				reorder, res.Len(), ref.Len(), pl.Explain())
		}
	}
}

func TestExplainPlansCoversEveryExperiment(t *testing.T) {
	for _, exp := range []string{"B1", "B2", "B3", "B4", "B5", "B6", "B7", "B8", "B9", "B10", "B11", "B12", "B13", "B14"} {
		out, err := ExplainPlans(exp, 2, true, 1)
		if err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.Contains(out, "Scan(") {
			t.Errorf("%s explain shows no plan:\n%s", exp, out)
		}
	}
	// The annotated experiments must carry estimates; B10 must show both
	// orders.
	out, err := ExplainPlans("B10", 2, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rewriter order", "enumerated order", "rows≈", "order: dp over 4 relations"} {
		if !strings.Contains(out, want) {
			t.Errorf("B10 explain missing %q:\n%s", want, out)
		}
	}
	if _, err := ExplainPlans("B99", 2, true, 1); err == nil {
		t.Error("unknown experiment should error")
	}
}

// TestExplainPlansMirrorsFlags: the printed plan must be the arm the flags
// select — B9's threshold fallback under -analyze=false, B8's serial control
// under -parallel 0.
func TestExplainPlansMirrorsFlags(t *testing.T) {
	out, err := ExplainPlans("B9", 2, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "threshold fallback") {
		t.Errorf("B9 explain with analyze=false must flag the fallback:\n%s", out)
	}
	if strings.Contains(out, "rows≈") {
		t.Errorf("threshold-fallback plan must not carry cost annotations:\n%s", out)
	}
	out, err = ExplainPlans("B8", 0, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "PartitionedHashJoin") || !strings.Contains(out, "HashJoin") {
		t.Errorf("B8 explain with -parallel 0 must show the serial arm:\n%s", out)
	}
}

func TestB9WithoutAnalyzeFallsBackToThreshold(t *testing.T) {
	tab, err := B9(100, 400, 2, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "threshold fallback") {
		t.Errorf("B9 title should flag the fallback mode:\n%s", tab.String())
	}
}

func TestB13VectorizedAgreesAtSmokeScale(t *testing.T) {
	// Small scale: the ≥3x/≥10x acceptance gates are full-scale-only, so a
	// nil error here asserts result equality and table shape.
	tab, err := B13(60, 1200, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"scalar", "vectorized", "allocs/run", "columnar projection"} {
		if !strings.Contains(out, want) {
			t.Errorf("B13 table missing %q:\n%s", want, out)
		}
	}
}

func TestB13ExplainShowsBothArms(t *testing.T) {
	out, err := ExplainPlans("B13", 2, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"VecScan(DELIVERY", "VecHashJoin[semi", "HashJoin[⋉", "typed kernels"} {
		if !strings.Contains(out, want) {
			t.Errorf("B13 explain missing %q:\n%s", want, out)
		}
	}
}

func TestB4VectorizedPNHLAgrees(t *testing.T) {
	// Under ExecMode.Vectorized the PNHL arm runs batch-native (VecPNHL);
	// B4 itself diff-checks every budget against the naive reference and
	// the segment expectations must still hold.
	ExecMode.Vectorized = true
	defer func() { ExecMode.Vectorized = false }()
	tab, err := B4(40, 60, 4, []int{0, 10, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := len(tab.Rows)
	if tab.Rows[n-3][2] != "1" {
		t.Errorf("unlimited budget used %s segments", tab.Rows[n-3][2])
	}
	if tab.Rows[n-1][2] == "1" {
		t.Errorf("tight budget should need multiple segments")
	}
}

func TestB14FourArmsAgreeAtSmokeScale(t *testing.T) {
	// Small scale on whatever cores the host has: the ≥2x gate is
	// full-scale multi-core only, so a nil error asserts four-way result
	// equality (parallelism 4 forces the partitioned plans even here).
	tab, err := B14(60, 1200, 0, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"scalar", "parallel", "vectorized", "parallel-vectorized", "no per-tuple sends"} {
		if !strings.Contains(out, want) {
			t.Errorf("B14 table missing %q:\n%s", want, out)
		}
	}
}

func TestB14ExplainShowsParallelVectorizedPlan(t *testing.T) {
	out, err := ExplainPlans("B14", 4, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"VecExchange", "VecPartitionedHashJoin", "parallel vectorized"} {
		if !strings.Contains(out, want) {
			t.Errorf("B14 explain missing %q:\n%s", want, out)
		}
	}
}
