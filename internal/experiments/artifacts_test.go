package experiments

import (
	"strings"
	"testing"
)

// TestArtifactsGenerate runs every artifact generator and checks for the
// load-bearing content of each paper table/figure.
func TestArtifactsGenerate(t *testing.T) {
	checks := map[string][]string{
		// Table 1 rows must expand into quantifier expressions.
		"T1": {"∃", "∀", "x.c ⊆ Y'", "x.c ⊇ Y'", "∈ x.c"},
		// Table 2 rows.
		"T2": {"count(Y')", "∩", "¬", "∃"},
		// Table 3 verdicts: ⊂ false, ⊇ true, the rest ?.
		"T3": {"⊂ Y'", "false", "⊇ Y'", "true", "?"},
		// Figure 1 carries the example tables.
		"F1": {"(a=2, c={})", "result"},
		// Figure 2 identifies the lost dangling tuple and the guard verdict.
		"F2": {"LOST", "(a=2, c={})", "nestjoin", "verified equal"},
		// Figure 3 shows the dangling tuple with an empty group.
		"F3": {"ys={}", "⊣"},
		// Rewriting examples end in joins.
		"RE1": {"⋉", "[rule1-semijoin]"},
		"RE2": {"▷", "[rule1-antijoin]"},
		"RE3": {"∃z ∈ x.c", "▷"},
		// The example-query pipeline reports plans and verification.
		"EQ": {"⋉", "⊣", "μ[parts]", "physical plan ≡ nested-loop reference", "typechecker"},
	}
	for key, gen := range Artifacts() {
		out, err := gen()
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		for _, want := range checks[key] {
			if !strings.Contains(out, want) {
				t.Errorf("%s output missing %q:\n%s", key, want, out)
			}
		}
	}
}

func TestArtifactKeysComplete(t *testing.T) {
	arts := Artifacts()
	for _, k := range ArtifactKeys() {
		if _, ok := arts[k]; !ok {
			t.Errorf("ArtifactKeys lists unknown artifact %q", k)
		}
	}
	if len(ArtifactKeys()) != len(arts) {
		t.Errorf("ArtifactKeys out of sync: %d vs %d", len(ArtifactKeys()), len(arts))
	}
}

func TestSchemaArtifact(t *testing.T) {
	out, err := SchemaArtifact()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Class Supplier with extension SUPPLIER",
		"SUPPLIER : {(eid: oid, sname: string, parts: {(pid: oid)})}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("schema artifact missing %q:\n%s", want, out)
		}
	}
}
