package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/adl"
	"repro/internal/bench"
	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/rewrite"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/value"
)

// Workload bundles one experiment's database, its naive (nested-loop) query
// and the optimized form produced by the §4 strategy.
type Workload struct {
	Name  string
	Store *storage.Store
	// Naive is the nested ADL expression as translated from OOSQL.
	Naive adl.Expr
	// Opt is the rewritten join query.
	Opt adl.Expr
	// Result of rewriting for inspection (trace, options used).
	Rewrite *rewrite.Result
}

// RunNaive executes the nested form tuple-at-a-time (reference interpreter).
func (w *Workload) RunNaive() (*value.Set, error) {
	return eval.EvalSet(w.Naive, nil, w.Store)
}

// ExecMode selects the physical execution mode for every workload's
// optimized arm: the zero value plans scalar. adlbench sets it from
// -vectorized/-batch so the whole suite can be A/B'd without a rebuild;
// B13 ignores it (its two arms ARE the A/B).
var ExecMode struct {
	Vectorized bool
	BatchSize  int
}

// RunOpt executes the optimized form through the physical planner.
func (w *Workload) RunOpt() (*value.Set, error) {
	cfg := plan.Config{Vectorized: ExecMode.Vectorized, BatchSize: ExecMode.BatchSize}
	return exec.Collect(cfg.Compile(w.Opt), &exec.Ctx{DB: w.Store})
}

// RunOptNL executes the optimized logical form with nested-loop physical
// operators only (isolates the logical rewrite from the physical win).
func (w *Workload) RunOptNL() (*value.Set, error) {
	return eval.EvalSet(w.Opt, nil, w.Store)
}

func optimize(name string, st *storage.Store, naive adl.Expr) *Workload {
	res := rewrite.Optimize(naive, rewrite.NewContext(st.Catalog()))
	return &Workload{Name: name, Store: st, Naive: naive, Opt: res.Expr, Rewrite: res}
}

// eq5Expr is Example Query 5: suppliers supplying red parts.
func eq5Expr() adl.Expr {
	return adl.Sel("s",
		adl.Ex("x", adl.Dot(adl.V("s"), "parts"),
			adl.Ex("p", adl.T("PART"),
				adl.AndE(adl.EqE(adl.V("x"), adl.SubT(adl.V("p"), "pid")),
					adl.EqE(adl.Dot(adl.V("p"), "color"), adl.CStr("red"))))),
		adl.T("SUPPLIER"))
}

// NewEQ5 builds the B1 workload (nested quantifiers vs semijoin) at a scale.
func NewEQ5(suppliers, parts int, seed int64) *Workload {
	st := bench.Generate(bench.Config{Suppliers: suppliers, Parts: parts, Seed: seed})
	return optimize(fmt.Sprintf("EQ5[%dx%d]", suppliers, parts), st, eq5Expr())
}

// eq4Expr is Example Query 4: referential integrity violations.
func eq4Expr() adl.Expr {
	return adl.MapE("s", adl.Dot(adl.V("s"), "eid"),
		adl.Sel("s",
			adl.Ex("z", adl.Dot(adl.V("s"), "parts"),
				adl.NotE(adl.Ex("p", adl.T("PART"),
					adl.EqE(adl.V("z"), adl.SubT(adl.V("p"), "pid"))))),
			adl.T("SUPPLIER")))
}

// NewEQ4 builds the B2 workload (universal/negated-existential vs
// unnest + antijoin).
func NewEQ4(suppliers, parts int, seed int64) *Workload {
	st := bench.Generate(bench.Config{Suppliers: suppliers, Parts: parts, DanglingFrac: 0.01, Seed: seed})
	return optimize(fmt.Sprintf("EQ4[%dx%d]", suppliers, parts), st, eq4Expr())
}

// eq6Expr is Example Query 6: supplier names with the parts supplied.
func eq6Expr() adl.Expr {
	return adl.MapE("s",
		adl.Tup("sname", adl.Dot(adl.V("s"), "sname"),
			"parts_suppl", adl.Sel("p",
				adl.CmpE(adl.In, adl.SubT(adl.V("p"), "pid"), adl.Dot(adl.V("s"), "parts")),
				adl.T("PART"))),
		adl.T("SUPPLIER"))
}

// NewEQ6 builds the B3 nestjoin workload (nesting in the select-clause).
func NewEQ6(suppliers, parts int, seed int64) *Workload {
	st := bench.Generate(bench.Config{Suppliers: suppliers, Parts: parts, Seed: seed})
	return optimize(fmt.Sprintf("EQ6[%dx%d]", suppliers, parts), st, eq6Expr())
}

// subsetExpr is the Figure 1/2 query shape against the supplier-part
// schema: suppliers all of whose parts are cheap — s.parts ⊆ Y′ with the
// correlated block Y′ = {⟨pid⟩ | p ∈ PART, p[pid] ∈ s.parts, p.price < 60}.
// P(x, ∅) = (s.parts ⊆ ∅) is run-time dependent, so grouping is buggy
// (suppliers with empty part sets vacuously qualify but are lost by the
// join) and the strategy must use the nestjoin.
func subsetExpr() adl.Expr {
	sub := adl.MapE("p", adl.Tup("pid", adl.Dot(adl.V("p"), "pid")),
		adl.Sel("p", adl.AndE(
			adl.CmpE(adl.In, adl.SubT(adl.V("p"), "pid"), adl.Dot(adl.V("s"), "parts")),
			adl.CmpE(adl.Lt, adl.Dot(adl.V("p"), "price"), adl.CInt(60))),
			adl.T("PART")))
	return adl.Sel("s",
		adl.CmpE(adl.SubEq, adl.Dot(adl.V("s"), "parts"), sub),
		adl.T("SUPPLIER"))
}

// NewSubset builds the B3 bug workload with a tunable fraction of suppliers
// with empty part sets (the dangling tuples grouping loses).
func NewSubset(suppliers, parts int, emptyFrac float64, seed int64) *Workload {
	st := bench.Generate(bench.Config{Suppliers: suppliers, Parts: parts, EmptyFrac: emptyFrac, Seed: seed})
	return optimize(fmt.Sprintf("subset[%dx%d,empty=%.0f%%]", suppliers, parts, emptyFrac*100), st, subsetExpr())
}

// GroupedPlan returns the [GaWo87] join+nest plan for the workload's naive
// query, forced past the Table 3 guard (the buggy plan of Figure 2).
func (w *Workload) GroupedPlan() (adl.Expr, bool) {
	// Normalize first so the with-bindings and from-compositions are gone.
	norm := rewrite.NewEngine(rewrite.NormalizeRules())
	base := norm.Run(w.Naive, rewrite.NewContext(w.Store.Catalog()))
	return rewrite.UnnestByGrouping(base, rewrite.NewContext(w.Store.Catalog()), true)
}

// OuterRepairPlan returns the [GaWo87] outer-join repair of the grouping
// plan — correct for every predicate, at the cost of the wider join.
func (w *Workload) OuterRepairPlan() (adl.Expr, bool) {
	norm := rewrite.NewEngine(rewrite.NormalizeRules())
	base := norm.Run(w.Naive, rewrite.NewContext(w.Store.Catalog()))
	return rewrite.UnnestByGroupingOuter(base, rewrite.NewContext(w.Store.Catalog()))
}

// MaterializeArms builds the B4 experiment: attach to every supplier the set
// of Part objects it references, four ways. The returned runners each
// produce the same-shaped result (supplier tuple with parts replaced by the
// set of part objects) except unnest-join-nest, which loses suppliers with
// empty part sets — its runner also reports the result cardinality so the
// loss is visible.
type MaterializeArms struct {
	Store *storage.Store
	// NaiveExpr is evaluated tuple-at-a-time.
	NaiveExpr adl.Expr
}

// NewMaterialize builds the B4 workload.
func NewMaterialize(suppliers, parts, fanout int, seed int64) *MaterializeArms {
	st := bench.Generate(bench.Config{Suppliers: suppliers, Parts: parts, Fanout: fanout, EmptyFrac: 0.05, Seed: seed})
	naive := adl.MapE("s",
		adl.Exc(adl.V("s"), "parts",
			adl.Sel("p",
				adl.CmpE(adl.In, adl.SubT(adl.V("p"), "pid"), adl.Dot(adl.V("s"), "parts")),
				adl.T("PART"))),
		adl.T("SUPPLIER"))
	return &MaterializeArms{Store: st, NaiveExpr: naive}
}

// RunNaive executes the per-tuple nested loop.
func (m *MaterializeArms) RunNaive() (*value.Set, error) {
	return eval.EvalSet(m.NaiveExpr, nil, m.Store)
}

// NestjoinOp builds the set-probe nestjoin arm's physical plan.
func (m *MaterializeArms) NestjoinOp() exec.Operator {
	join := &exec.SetProbeJoin{
		Kind: adl.NestJ,
		L:    &exec.Scan{Table: "SUPPLIER"},
		R:    &exec.Scan{Table: "PART"},
		Attr: "parts",
		RKey: exec.NewScalar(adl.SubT(adl.V("p"), "pid"), "p"),
		As:   "ys",
	}
	// Reshape (eid, sname, parts, ys) to parts := ys.
	body := adl.Exc(adl.SubT(adl.V("z"), "eid", "sname"),
		"parts", adl.Dot(adl.V("z"), "ys"))
	return &exec.MapOp{Child: join, Var: "z", Body: exec.NewScalar(body, "z")}
}

// RunNestjoin executes the set-probe nestjoin plan.
func (m *MaterializeArms) RunNestjoin() (*value.Set, error) {
	return exec.Collect(m.NestjoinOp(), &exec.Ctx{DB: m.Store})
}

// RunPNHL executes the partitioned nested-hashed-loops algorithm with the
// given build-side memory budget (rows per segment; 0 = unlimited). Under
// ExecMode.Vectorized the batch-native VecPNHL runs instead, with the same
// segmentation semantics.
func (m *MaterializeArms) RunPNHL(budgetRows int) (*value.Set, int, error) {
	member := exec.NewScalar(adl.V("y"), "e", "y")
	elemKey := exec.NewScalar(adl.Dot(adl.V("e"), "pid"), "e")
	buildKey := exec.NewScalar(adl.Dot(adl.V("y"), "pid"), "y")
	if ExecMode.Vectorized {
		op := &exec.VecPNHL{
			L:          &exec.VecScan{Extent: "SUPPLIER", Attrs: []string{"parts"}, Batch: ExecMode.BatchSize},
			R:          &exec.Scan{Table: "PART"},
			Attr:       "parts",
			ElemKey:    elemKey,
			BuildKey:   buildKey,
			BudgetRows: budgetRows,
			Member:     &member,
		}
		set, err := exec.Collect(op, &exec.Ctx{DB: m.Store})
		return set, op.Segments(), err
	}
	op := &exec.PNHL{
		L:          &exec.Scan{Table: "SUPPLIER"},
		R:          &exec.Scan{Table: "PART"},
		Attr:       "parts",
		ElemKey:    elemKey,
		BuildKey:   buildKey,
		BudgetRows: budgetRows,
		Member:     &member,
	}
	set, err := exec.Collect(op, &exec.Ctx{DB: m.Store})
	return set, op.Segments(), err
}

// RunUnnestJoinNest executes the μ → hash join → ν alternative the paper
// compares PNHL against. It returns its result cardinality: suppliers with
// empty part sets are lost by μ and never regrouped (the restructuring
// overhead plus the PNF caveat of §4).
func (m *MaterializeArms) RunUnnestJoinNest() (int, error) {
	// μ_parts(SUPPLIER): (pid, eid, sname); join part objects wrapped as
	// (pobj = p, jpid = p.pid) to avoid the pid concat conflict; nest the
	// pobj/jpid/pid attributes away.
	rshape := adl.Tup("pobj", adl.V("p"), "jpid", adl.Dot(adl.V("p"), "pid"))
	rop := &exec.MapOp{Child: &exec.Scan{Table: "PART"}, Var: "p", Body: exec.NewScalar(rshape, "p")}
	join := &exec.HashJoin{
		Kind: adl.Inner,
		L:    &exec.UnnestOp{Child: &exec.Scan{Table: "SUPPLIER"}, Attr: "parts"},
		R:    rop,
		LVar: "l", RVar: "r",
		LKey: exec.NewScalar(adl.Dot(adl.V("l"), "pid"), "l"),
		RKey: exec.NewScalar(adl.Dot(adl.V("r"), "jpid"), "r"),
	}
	nest := &exec.NestOp{Child: join, Attrs: []string{"pid", "pobj", "jpid"}, As: "parts"}
	set, err := exec.Collect(nest, &exec.Ctx{DB: m.Store})
	if err != nil {
		return 0, err
	}
	return set.Len(), nil
}

// PointerJoinArms is the B5 experiment: materialize each delivery's supplier
// object, by value-based hash join versus pointer-based assembly.
type PointerJoinArms struct {
	Store *storage.Store
}

// NewPointerJoin builds the B5 workload.
func NewPointerJoin(suppliers, deliveries int, seed int64) *PointerJoinArms {
	st := bench.Generate(bench.Config{Suppliers: suppliers, Parts: 10, Fanout: 2,
		Deliveries: deliveries, Seed: seed})
	return &PointerJoinArms{Store: st}
}

// RunHashJoin materializes via a value-based hash join on the oid.
func (p *PointerJoinArms) RunHashJoin() (*value.Set, error) {
	rshape := adl.Tup("sobj", adl.V("s"), "seid", adl.Dot(adl.V("s"), "eid"))
	rop := &exec.MapOp{Child: &exec.Scan{Table: "SUPPLIER"}, Var: "s", Body: exec.NewScalar(rshape, "s")}
	join := &exec.HashJoin{
		Kind: adl.Inner,
		L:    &exec.Scan{Table: "DELIVERY"},
		R:    rop,
		LVar: "d", RVar: "r",
		LKey: exec.NewScalar(adl.Dot(adl.V("d"), "supplier"), "d"),
		RKey: exec.NewScalar(adl.Dot(adl.V("r"), "seid"), "r"),
	}
	body := adl.Exc(adl.SubT(adl.V("z"), "did", "supplier", "supply", "date"),
		"sup", adl.Dot(adl.V("z"), "sobj"))
	op := &exec.MapOp{Child: join, Var: "z", Body: exec.NewScalar(body, "z")}
	return exec.Collect(op, &exec.Ctx{DB: p.Store})
}

// AssemblyOp builds the pointer-based materialization arm's physical plan.
func (p *PointerJoinArms) AssemblyOp() exec.Operator {
	return &exec.Assembly{Child: &exec.Scan{Table: "DELIVERY"}, Attr: "supplier", As: "sup"}
}

// RunAssembly materializes via pointer dereferencing.
func (p *PointerJoinArms) RunAssembly() (*value.Set, error) {
	return exec.Collect(p.AssemblyOp(), &exec.Ctx{DB: p.Store})
}

// NewForallExchange builds the B6 workload (Rewriting Example 3 shape) on a
// synthetic set-of-sets database of the given size.
func NewForallExchange(nx, ny int, seed int64) (*storage.MemDB, adl.Expr, adl.Expr) {
	rng := newRng(seed)
	x := value.EmptySet()
	for i := 0; i < nx; i++ {
		c := value.EmptySet()
		for j := 0; j < 1+rng.Intn(3); j++ {
			inner := value.EmptySet()
			for k := 0; k < 1+rng.Intn(4); k++ {
				inner.Add(value.Int(int64(rng.Intn(ny))))
			}
			c.Add(inner)
		}
		x.Add(value.NewTuple("a", value.Int(int64(i)), "c", c))
	}
	y := value.EmptySet()
	for i := 0; i < ny; i++ {
		y.Add(value.NewTuple("d", value.Int(int64(i))))
	}
	db := storage.NewMemDB("XX", x, "YY", y)

	q := adl.CmpE(adl.Le, adl.Dot(adl.V("y"), "d"), adl.CInt(2))
	sub := adl.MapE("y", adl.Dot(adl.V("y"), "d"), adl.Sel("y", q, adl.T("YY")))
	naive := adl.Sel("x",
		adl.All("z", adl.Dot(adl.V("x"), "c"), adl.CmpE(adl.SupEq, adl.V("z"), sub)),
		adl.T("XX"))

	ctx := rewrite.NewStaticContext(map[string]*types.Tuple{
		"XX": types.NewTuple("a", types.IntType, "c", types.NewSet(types.NewSet(types.IntType))),
		"YY": types.NewTuple("d", types.IntType),
	})
	res := rewrite.Optimize(naive, ctx)
	return db, naive, res.Expr
}

// newRng is a deterministic rand source helper.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// ParallelJoinArms is the B8 workload: the same equi-key grouping join —
// nest each supplier's deliveries, keeping only the delivery oids — executed
// by the serial HashJoin and by the Grace-style PartitionedHashJoin. The
// per-probe work (match iteration plus the right-tuple function) happens
// inside the partitions, so it is the shape parallelism pays off on.
type ParallelJoinArms struct {
	Store *storage.Store
	// Parallelism is the partition count of the parallel arm: n > 0 means n
	// partitions, negative means NumCPU, and 0 means serial — the parallel
	// arm falls back to the serial HashJoin, giving benchmark sweeps a
	// control point (cmd/adlbench -parallel 0).
	Parallelism int
}

// NewParallelJoin builds the B8 workload.
func NewParallelJoin(suppliers, deliveries, parallelism int, seed int64) *ParallelJoinArms {
	st := bench.Generate(bench.Config{Suppliers: suppliers, Parts: 10, Fanout: 2,
		Deliveries: deliveries, Seed: seed})
	return &ParallelJoinArms{Store: st, Parallelism: parallelism}
}

// StrategyArms is the B9 workload: one logical equi-key join over the
// supplier-delivery schema, executed by every applicable forced physical
// strategy and by the optimizer — cost-based with collected statistics, or
// the size-threshold fallback without. It is the paper's §5.1 "the optimizer
// may choose" made measurable: the forced arms expose what each strategy
// costs, the optimizer arm shows which one the cost model picks.
type StrategyArms struct {
	Name  string
	Store *storage.Store
	// Join is the logical join (SUPPLIER × DELIVERY on eid = supplier).
	Join *adl.Join
	// Parallelism is the partition count for the partitioned arm and the
	// optimizer's parallel candidates; <=0 means NumCPU.
	Parallelism int

	stats *storage.DBStats
}

// Statistics returns the workload's collected statistics, running the
// ANALYZE pass on first use. B9 times the first call separately so the
// one-off collection cost is visible but not charged to the optimizer arm.
func (a *StrategyArms) Statistics() *storage.DBStats {
	if a.stats == nil {
		a.stats = a.Store.Analyze()
	}
	return a.stats
}

// Warm materializes both extents so no timed arm pays the store's one-off
// extent-cache build.
func (a *StrategyArms) Warm() error {
	for _, ext := range []string{"SUPPLIER", "DELIVERY"} {
		if _, err := a.Store.Table(ext); err != nil {
			return err
		}
	}
	return nil
}

// NewStrategyJoin builds a B9 workload of the given join kind and scale.
func NewStrategyJoin(name string, kind adl.JoinKind, suppliers, deliveries, parallelism int, seed int64) *StrategyArms {
	st := bench.Generate(bench.Config{Suppliers: suppliers, Parts: 10, Fanout: 2,
		Deliveries: deliveries, Seed: seed})
	j := adl.JoinE(adl.T("SUPPLIER"), "s", "d",
		adl.EqE(adl.Dot(adl.V("s"), "eid"), adl.Dot(adl.V("d"), "supplier")),
		adl.T("DELIVERY"))
	j.Kind = kind
	if kind == adl.NestJ {
		j.As = "ds"
		j.RFun = adl.SubT(adl.V("d"), "did")
	}
	return &StrategyArms{Name: name, Store: st, Join: j, Parallelism: parallelism}
}

// Arms lists the forced strategies applicable to this workload's join kind.
// The nested loop is skipped when the cross product exceeds a million pairs —
// at that scale it only proves the point by wasting minutes.
func (a *StrategyArms) Arms() []string {
	arms := []string{"hash"}
	if a.Join.Kind == adl.Inner {
		arms = append(arms, "hash-swap")
	}
	if a.Join.Kind == adl.Inner || a.Join.Kind == adl.NestJ {
		arms = append(arms, "sortmerge")
	}
	arms = append(arms, "parallel")
	if a.Store.Size("SUPPLIER")*a.Store.Size("DELIVERY") <= 1_000_000 {
		arms = append(arms, "nl")
	}
	return arms
}

// RunForced executes the join with one forced physical strategy.
func (a *StrategyArms) RunForced(arm string) (*value.Set, error) {
	lk := exec.NewScalar(adl.Dot(adl.V("s"), "eid"), "s")
	rk := exec.NewScalar(adl.Dot(adl.V("d"), "supplier"), "d")
	l := &exec.Scan{Table: "SUPPLIER"}
	r := &exec.Scan{Table: "DELIVERY"}
	var rfun *exec.Scalar
	if a.Join.RFun != nil {
		s := exec.NewScalar(a.Join.RFun, "s", "d")
		rfun = &s
	}
	var op exec.Operator
	switch arm {
	case "nl":
		op = &exec.NLJoin{Kind: a.Join.Kind, L: l, R: r, LVar: "s", RVar: "d",
			Pred: exec.NewScalar(a.Join.On, "s", "d"), As: a.Join.As, RFun: rfun}
	case "hash":
		op = &exec.HashJoin{Kind: a.Join.Kind, L: l, R: r, LVar: "s", RVar: "d",
			LKey: lk, RKey: rk, As: a.Join.As, RFun: rfun}
	case "hash-swap":
		if a.Join.Kind != adl.Inner {
			return nil, fmt.Errorf("B9: hash-swap applies to inner joins only")
		}
		op = &exec.HashJoin{Kind: adl.Inner, L: r, R: l, LVar: "d", RVar: "s",
			LKey: rk, RKey: lk}
	case "sortmerge":
		op = &exec.SortMergeJoin{Kind: a.Join.Kind, L: l, R: r, LVar: "s", RVar: "d",
			LKey: lk, RKey: rk, As: a.Join.As, RFun: rfun}
	case "parallel":
		op = &exec.PartitionedHashJoin{Kind: a.Join.Kind, L: l, R: r,
			LVar: "s", RVar: "d", LKey: lk, RKey: rk, As: a.Join.As, RFun: rfun,
			Partitions: a.Parallelism}
	default:
		return nil, fmt.Errorf("B9: unknown arm %q", arm)
	}
	return exec.Collect(op, &exec.Ctx{DB: a.Store})
}

// PlanOptimizer compiles the optimizer arm's plan: cost-based when analyze
// is set (statistics collected first), threshold fallback otherwise. The
// returned label describes the chosen strategy.
func (a *StrategyArms) PlanOptimizer(analyze bool) (*plan.Plan, string) {
	cfg := plan.Config{Parallelism: a.Parallelism}
	if analyze {
		cfg.Statistics = a.Statistics()
	} else {
		cfg.Stats = a.Store
	}
	pl := cfg.Plan(a.Join)
	label := strings.TrimPrefix(fmt.Sprintf("%T", pl.Root), "*exec.")
	if est, ok := pl.Estimate(pl.Root); ok && est.Note != "" {
		label += " (" + est.Note + ")"
	}
	return pl, label
}

// RunOptimizer executes the optimizer arm.
func (a *StrategyArms) RunOptimizer(analyze bool) (*value.Set, string, error) {
	pl, label := a.PlanOptimizer(analyze)
	set, err := exec.Collect(pl.Root, &exec.Ctx{DB: a.Store})
	return set, label, err
}

// StarJoinArms is the B10 workload: a four-extent star join —
// ORD(ordid, cust, item, qty) against ITEM, CUST and a region-filtered
// REGION — written in a deliberately poor order: the huge ORD ⋈ ITEM first,
// the selective region filter last. With collected statistics the two-phase
// optimizer decomposes the chain into a join graph and enumerates a cheaper
// order (filter REGION, shrink CUST, then touch ORD and ITEM); the baseline
// arm (plan.Config.NoReorder) prices the same physical operators but keeps
// the written order. Both arms must return the identical result set.
type StarJoinArms struct {
	Name  string
	Store *storage.Store
	// Query is the nested join chain in written (rewriter) order.
	Query adl.Expr
	// Parallelism feeds the planner's parallel candidates; <= 0 means NumCPU.
	Parallelism int

	stats *storage.DBStats
}

// starCatalog is the B10 schema: REGION ← CUST ← ORD → ITEM.
func starCatalog() *schema.Catalog {
	c := schema.NewCatalog()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(c.Define(&schema.Class{
		Name: "Region", Extent: "REGION", IDField: "rid",
		Attrs: []schema.Attr{
			{Name: "rname", Kind: schema.Plain, Type: types.StringType},
		},
	}))
	must(c.Define(&schema.Class{
		Name: "Cust", Extent: "CUST", IDField: "cid",
		Attrs: []schema.Attr{
			{Name: "cname", Kind: schema.Plain, Type: types.StringType},
			{Name: "region", Kind: schema.Ref, RefClass: "Region"},
		},
	}))
	must(c.Define(&schema.Class{
		Name: "Item", Extent: "ITEM", IDField: "iid",
		Attrs: []schema.Attr{
			{Name: "iname", Kind: schema.Plain, Type: types.StringType},
			{Name: "weight", Kind: schema.Plain, Type: types.IntType},
		},
	}))
	must(c.Define(&schema.Class{
		Name: "Ord", Extent: "ORD", IDField: "ordid",
		Attrs: []schema.Attr{
			{Name: "cust", Kind: schema.Ref, RefClass: "Cust"},
			{Name: "item", Kind: schema.Ref, RefClass: "Item"},
			{Name: "qty", Kind: schema.Plain, Type: types.IntType},
		},
	}))
	return c
}

// NewStarJoin builds the B10 workload at the given extent sizes.
func NewStarJoin(orders, items, custs, regions int, parallelism int, seed int64) *StarJoinArms {
	rng := newRng(seed)
	st := storage.New(starCatalog())
	ins := func(extent string, t *value.Tuple) value.OID {
		oid, err := st.Insert(extent, t)
		if err != nil {
			panic(err)
		}
		return oid
	}
	regionOIDs := make([]value.OID, regions)
	for i := 0; i < regions; i++ {
		regionOIDs[i] = ins("REGION", value.NewTuple(
			"rname", value.String(fmt.Sprintf("region-%d", i))))
	}
	custOIDs := make([]value.OID, custs)
	for i := 0; i < custs; i++ {
		custOIDs[i] = ins("CUST", value.NewTuple(
			"cname", value.String(fmt.Sprintf("cust-%d", i)),
			"region", regionOIDs[rng.Intn(regions)]))
	}
	itemOIDs := make([]value.OID, items)
	for i := 0; i < items; i++ {
		itemOIDs[i] = ins("ITEM", value.NewTuple(
			"iname", value.String(fmt.Sprintf("item-%d", i)),
			"weight", value.Int(int64(rng.Intn(50)+1))))
	}
	for i := 0; i < orders; i++ {
		ins("ORD", value.NewTuple(
			"cust", custOIDs[rng.Intn(custs)],
			"item", itemOIDs[rng.Intn(items)],
			"qty", value.Int(int64(rng.Intn(20)+1))))
	}

	// ((ORD ⋈ ITEM) ⋈ CUST) ⋈ σ-REGION, worst-first: the biggest join is
	// written innermost and the only selective predicate outermost.
	j1 := adl.JoinE(adl.T("ORD"), "o", "i",
		adl.EqE(adl.Dot(adl.V("o"), "item"), adl.Dot(adl.V("i"), "iid")),
		adl.T("ITEM"))
	j2 := adl.JoinE(j1, "oi", "c",
		adl.EqE(adl.Dot(adl.V("oi"), "cust"), adl.Dot(adl.V("c"), "cid")),
		adl.T("CUST"))
	j3 := adl.JoinE(j2, "oic", "r",
		adl.AndE(
			adl.EqE(adl.Dot(adl.V("oic"), "region"), adl.Dot(adl.V("r"), "rid")),
			adl.EqE(adl.Dot(adl.V("r"), "rname"), adl.CStr("region-0"))),
		adl.T("REGION"))
	name := fmt.Sprintf("star[%dx%dx%dx%d]", orders, items, custs, regions)
	return &StarJoinArms{Name: name, Store: st, Query: j3, Parallelism: parallelism}
}

// Statistics runs the ANALYZE pass on first use.
func (a *StarJoinArms) Statistics() *storage.DBStats {
	if a.stats == nil {
		a.stats = a.Store.Analyze()
	}
	return a.stats
}

// Warm materializes every extent so no timed arm pays the one-off
// extent-cache build.
func (a *StarJoinArms) Warm() error {
	for _, ext := range []string{"ORD", "ITEM", "CUST", "REGION"} {
		if _, err := a.Store.Table(ext); err != nil {
			return err
		}
	}
	return nil
}

// Plan compiles the query cost-based; reorder false keeps the written order
// (the baseline arm), true enumerates.
func (a *StarJoinArms) Plan(reorder bool) *plan.Plan {
	cfg := plan.Config{Statistics: a.Statistics(), Parallelism: a.Parallelism,
		NoReorder: !reorder}
	return cfg.Plan(a.Query)
}

// Run executes one arm.
func (a *StarJoinArms) Run(reorder bool) (*value.Set, *plan.Plan, error) {
	pl := a.Plan(reorder)
	set, err := exec.Collect(pl.Root, &exec.Ctx{DB: a.Store})
	return set, pl, err
}

// RunReference executes the query rule-based (no statistics, serial) as the
// independent correctness baseline.
func (a *StarJoinArms) RunReference() (*value.Set, error) {
	return plan.Run(a.Query, a.Store)
}

// LookupJoinArms is the B11 workload: a selective lookup join —
// σ(sname = "supplier-42")(SUPPLIER) ⋈ DELIVERY on eid = supplier — where
// the filter keeps a single supplier, so probing DELIVERY's secondary index
// per outer row beats scanning and hashing the whole delivery extent. With
// Indexed set, an ordered index on SUPPLIER.sname and a hash index on
// DELIVERY.supplier are created, ANALYZE records them, and the cost model
// should choose an IndexScan leaf feeding an IndexNLJoin; the forced hash
// arms expose what the scan-based strategies cost on the same query.
type LookupJoinArms struct {
	Name  string
	Store *storage.Store
	// Query is the logical selective lookup join.
	Query adl.Expr
	// Parallelism feeds the planner's parallel candidates; <= 0 means NumCPU.
	Parallelism int
	// Indexed records whether the secondary indexes were created.
	Indexed bool

	stats *storage.DBStats
}

// NewLookupJoin builds the B11 workload; indexes toggles index creation (the
// -indexes=false A/B arm plans the same query without them).
func NewLookupJoin(suppliers, deliveries, parallelism int, indexes bool, seed int64) *LookupJoinArms {
	st := bench.Generate(bench.Config{Suppliers: suppliers, Parts: 10, Fanout: 2,
		Deliveries: deliveries, Seed: seed})
	if indexes {
		if err := st.CreateIndex("SUPPLIER", "sname", storage.OrderedIndex); err != nil {
			panic(err)
		}
		if err := st.EnsureIndexes("DELIVERY", "supplier"); err != nil {
			panic(err)
		}
	}
	sel := adl.Sel("s",
		adl.EqE(adl.Dot(adl.V("s"), "sname"), adl.CStr("supplier-42")),
		adl.T("SUPPLIER"))
	q := adl.JoinE(sel, "s", "d",
		adl.EqE(adl.Dot(adl.V("s"), "eid"), adl.Dot(adl.V("d"), "supplier")),
		adl.T("DELIVERY"))
	name := fmt.Sprintf("lookup[%dx%d]", suppliers, deliveries)
	return &LookupJoinArms{Name: name, Store: st, Query: q,
		Parallelism: parallelism, Indexed: indexes}
}

// Statistics runs the ANALYZE pass on first use (recording the indexes).
func (a *LookupJoinArms) Statistics() *storage.DBStats {
	if a.stats == nil {
		a.stats = a.Store.Analyze()
	}
	return a.stats
}

// Warm materializes both extents so no timed arm pays the one-off
// extent-cache build.
func (a *LookupJoinArms) Warm() error {
	for _, ext := range []string{"SUPPLIER", "DELIVERY"} {
		if _, err := a.Store.Table(ext); err != nil {
			return err
		}
	}
	return nil
}

// lookupJoinPieces builds the shared scalars of the forced arms.
func (a *LookupJoinArms) lookupJoinPieces() (filter, lk, rk exec.Scalar) {
	filter = exec.NewScalar(adl.EqE(adl.Dot(adl.V("s"), "sname"), adl.CStr("supplier-42")), "s")
	lk = exec.NewScalar(adl.Dot(adl.V("s"), "eid"), "s")
	rk = exec.NewScalar(adl.Dot(adl.V("d"), "supplier"), "d")
	return
}

// RunForcedHash executes the forced scan-based baseline: filter SUPPLIER by
// a full scan, hash join with DELIVERY. swap false builds on DELIVERY (the
// rewriter orientation), true builds on the filtered supplier side — the
// best plan available without indexes.
func (a *LookupJoinArms) RunForcedHash(swap bool) (*value.Set, error) {
	filter, lk, rk := a.lookupJoinPieces()
	l := exec.Operator(&exec.Filter{Child: &exec.Scan{Table: "SUPPLIER"}, Var: "s", Pred: filter})
	r := exec.Operator(&exec.Scan{Table: "DELIVERY"})
	var op exec.Operator
	if swap {
		op = &exec.HashJoin{Kind: adl.Inner, L: r, R: l, LVar: "d", RVar: "s",
			LKey: rk, RKey: lk}
	} else {
		op = &exec.HashJoin{Kind: adl.Inner, L: l, R: r, LVar: "s", RVar: "d",
			LKey: lk, RKey: rk}
	}
	return exec.Collect(op, &exec.Ctx{DB: a.Store})
}

// PlanOptimizer compiles the optimizer arm from collected statistics; with
// Indexed unset (or noIndexes forced) the planner sees no index entries and
// stays with the scan-based family.
func (a *LookupJoinArms) PlanOptimizer() *plan.Plan {
	cfg := plan.Config{Statistics: a.Statistics(), Parallelism: a.Parallelism,
		NoIndexes: !a.Indexed}
	return cfg.Plan(a.Query)
}

// RunOptimizer executes the optimizer arm, returning the result and a label
// for the chosen root operator.
func (a *LookupJoinArms) RunOptimizer() (*value.Set, string, error) {
	pl := a.PlanOptimizer()
	label := strings.TrimPrefix(fmt.Sprintf("%T", pl.Root), "*exec.")
	set, err := exec.Collect(pl.Root, &exec.Ctx{DB: a.Store})
	return set, label, err
}

// SkewJoinArms is the B12 workload: a three-relation star join over
// Zipf-skewed data. FACT references DIMA and DIMB uniformly; the query
// filters DIMA to its heavy-hitter category (which truly keeps most of the
// dimension, while the uniform 1/NDV rule estimates a sliver) and DIMB to
// one uniform group (estimated correctly by both models). Hash indexes on
// FACT.fa and FACT.fb let either dimension probe the bare FACT extent with
// an index-nested-loop join, so the join-order choice decides how many
// random FACT fetches the plan pays. With histograms the DP enumerator sees
// the hot filter for what it is and joins the genuinely selective DIMB side
// first; the NoHistograms arm is lured into probing with the "small" σDIMA
// and drags a several-times-larger intermediate through the rest of the
// plan — same result, strictly more pages and time.
type SkewJoinArms struct {
	Name  string
	Store *storage.Store
	// Query is the star join in written order (FACT ⋈ DIMA first).
	Query adl.Expr
	// HotCat is the skewed filter constant (the most frequent DIMA.cat).
	HotCat value.Value
	// Parallelism feeds the planner's parallel candidates; <= 0 means NumCPU.
	Parallelism int

	stats *storage.DBStats
}

// NewSkewJoin builds the B12 workload at the given scale.
func NewSkewJoin(facts, dims, parallelism int, seed int64) *SkewJoinArms {
	st := bench.GenerateSkew(bench.SkewConfig{
		Facts: facts, DimA: dims, DimB: dims, Seed: seed})
	if err := st.EnsureIndexes("FACT", "fa", "fb"); err != nil {
		panic(err)
	}
	hot, _ := bench.HotCategory(st)
	j1 := adl.JoinE(adl.T("FACT"), "f", "a",
		adl.AndE(
			adl.EqE(adl.Dot(adl.V("f"), "fa"), adl.Dot(adl.V("a"), "aid")),
			adl.EqE(adl.Dot(adl.V("a"), "cat"), adl.C(hot))),
		adl.T("DIMA"))
	q := adl.JoinE(j1, "fa2", "b",
		adl.AndE(
			adl.EqE(adl.Dot(adl.V("fa2"), "fb"), adl.Dot(adl.V("b"), "bid")),
			adl.EqE(adl.Dot(adl.V("b"), "grp"), adl.CInt(3))),
		adl.T("DIMB"))
	name := fmt.Sprintf("skew[%dx%d]", facts, dims)
	return &SkewJoinArms{Name: name, Store: st, Query: q, HotCat: hot,
		Parallelism: parallelism}
}

// Statistics runs the ANALYZE pass (histograms included) on first use.
func (a *SkewJoinArms) Statistics() *storage.DBStats {
	if a.stats == nil {
		a.stats = a.Store.Analyze()
	}
	return a.stats
}

// Warm materializes every extent so no timed arm pays the one-off
// extent-cache build.
func (a *SkewJoinArms) Warm() error {
	for _, ext := range []string{"FACT", "DIMA", "DIMB"} {
		if _, err := a.Store.Table(ext); err != nil {
			return err
		}
	}
	return nil
}

// Plan compiles the query cost-based from the same collected statistics;
// noHist true is the A/B control arm (plan.Config.NoHistograms).
func (a *SkewJoinArms) Plan(noHist bool) *plan.Plan {
	cfg := plan.Config{Statistics: a.Statistics(), Parallelism: a.Parallelism,
		NoHistograms: noHist}
	return cfg.Plan(a.Query)
}

// Run executes one arm.
func (a *SkewJoinArms) Run(noHist bool) (*value.Set, *plan.Plan, error) {
	pl := a.Plan(noHist)
	set, err := exec.Collect(pl.Root, &exec.Ctx{DB: a.Store})
	return set, pl, err
}

// RunReference executes the query rule-based (no statistics, serial) as the
// independent correctness baseline.
func (a *SkewJoinArms) RunReference() (*value.Set, error) {
	return plan.Run(a.Query, a.Store)
}

// parallelJoinScalars builds the shared key and right-tuple scalars.
func parallelJoinScalars() (lk, rk, rfun exec.Scalar) {
	lk = exec.NewScalar(adl.Dot(adl.V("s"), "eid"), "s")
	rk = exec.NewScalar(adl.Dot(adl.V("d"), "supplier"), "d")
	rfun = exec.NewScalar(adl.SubT(adl.V("d"), "did"), "s", "d")
	return
}

// SerialOp builds the serial arm's physical plan.
func (p *ParallelJoinArms) SerialOp() exec.Operator {
	lk, rk, rfun := parallelJoinScalars()
	return &exec.HashJoin{Kind: adl.NestJ, LVar: "s", RVar: "d",
		L: &exec.Scan{Table: "SUPPLIER"}, R: &exec.Scan{Table: "DELIVERY"},
		LKey: lk, RKey: rk, As: "ds", RFun: &rfun}
}

// RunSerial executes the grouping join with the serial HashJoin.
func (p *ParallelJoinArms) RunSerial() (*value.Set, error) {
	return exec.Collect(p.SerialOp(), &exec.Ctx{DB: p.Store})
}

// ParallelOp builds the partitioned parallel arm's physical plan.
func (p *ParallelJoinArms) ParallelOp() exec.Operator {
	lk, rk, rfun := parallelJoinScalars()
	return &exec.PartitionedHashJoin{Kind: adl.NestJ, LVar: "s", RVar: "d",
		L: &exec.Scan{Table: "SUPPLIER"}, R: &exec.Scan{Table: "DELIVERY"},
		LKey: lk, RKey: rk, As: "ds", RFun: &rfun,
		Partitions: p.Parallelism}
}

// RunParallel executes the same join with the partitioned parallel variant,
// or serially when Parallelism is 0 (the sweep's control point).
func (p *ParallelJoinArms) RunParallel() (*value.Set, error) {
	if p.Parallelism == 0 {
		return p.RunSerial()
	}
	return exec.Collect(p.ParallelOp(), &exec.Ctx{DB: p.Store})
}

// VecJoinArms is the B13 workload: the large equi-join + filter pipeline
// σ(date < cutoff)(DELIVERY) ⋉(d.supplier = s.eid) SUPPLIER, executed twice
// from identical logical form — once by the scalar reference operators, once
// by the vectorized batch pipeline (plan.Config.Vectorized). The cutoff
// keeps ~1/28 of the deliveries, so the scalar arm's per-row predicate
// interpretation dominates and the vectorized arm's typed kernels over the
// columnar projection show their full margin.
type VecJoinArms struct {
	Name  string
	Store *storage.Store
	// Query is the logical semi-join pipeline both arms compile.
	Query *adl.Join
	// BatchSize overrides the vectorized arm's rows-per-batch; 0 means
	// exec.DefaultBatchSize.
	BatchSize int
}

// NewVecJoin builds the B13 workload at a scale.
func NewVecJoin(suppliers, deliveries, batch int, seed int64) *VecJoinArms {
	st := bench.Generate(bench.Config{Suppliers: suppliers, Parts: 10, Fanout: 2,
		SupplySize: 1, Deliveries: deliveries, Seed: seed})
	sel := adl.Sel("d",
		adl.CmpE(adl.Lt, adl.Dot(adl.V("d"), "date"), adl.C(value.Date(940102))),
		adl.T("DELIVERY"))
	j := adl.JoinE(sel, "d", "s",
		adl.EqE(adl.Dot(adl.V("d"), "supplier"), adl.Dot(adl.V("s"), "eid")),
		adl.T("SUPPLIER"))
	j.Kind = adl.Semi
	return &VecJoinArms{
		Name:      fmt.Sprintf("VecJoin[%dx%d]", suppliers, deliveries),
		Store:     st,
		Query:     j,
		BatchSize: batch,
	}
}

// Warm materializes both extents and the vectorized arm's columnar
// projection so neither timed arm pays a one-off cache build.
func (a *VecJoinArms) Warm() error {
	for _, ext := range []string{"SUPPLIER", "DELIVERY"} {
		if _, err := a.Store.Table(ext); err != nil {
			return err
		}
	}
	_, err := a.Store.ColProj("DELIVERY", []string{"date", "supplier"})
	return err
}

// Plan compiles the query scalar or vectorized.
func (a *VecJoinArms) Plan(vectorized bool) *plan.Plan {
	cfg := plan.Config{}
	if vectorized {
		cfg.Vectorized = true
		cfg.BatchSize = a.BatchSize
	}
	return cfg.Plan(a.Query)
}

// PlanArm compiles the query for one of B14's four arms: scalar reference,
// parallel partitioned operators, vectorized batch kernels, or both
// combined (morsel-driven VecExchange feeding the partitioned batch join).
// The parallel arms are forced, not optimizer decisions: the threshold is
// pinned to 1 so the A/B comparison holds at smoke scales too, mirroring
// how -vectorized forces the batch pipeline.
func (a *VecJoinArms) PlanArm(vectorized, parallel bool, workers int) *plan.Plan {
	cfg := plan.Config{}
	if vectorized {
		cfg.Vectorized = true
		cfg.BatchSize = a.BatchSize
	}
	if parallel {
		cfg.Parallelism = workers
		cfg.Stats = a.Store
		cfg.ParallelThreshold = 1
	}
	return cfg.Plan(a.Query)
}
