// Package experiments implements the performance experiment suite B1–B7
// (see DESIGN.md): one experiment per performance claim behind the paper's
// optimization options, each comparing the naive nested-loop execution
// against the set-oriented plans the rewriter enables and printing a
// paper-style result table. Absolute numbers are machine-dependent; the
// reproduction claims are the shapes — who wins, by roughly what factor,
// where crossovers fall.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"repro/internal/adl"
	"repro/internal/bench"
	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/value"
)

// timed runs f once and returns its duration.
func timed(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

// timedAllocs runs f once and returns its duration plus the runtime.MemStats
// Mallocs delta it incurred, so every experiment arm can report an allocation
// count next to its wall time without a separate go test -bench run. The
// delta includes whatever the goroutine's peers allocate meanwhile; arms run
// serially here, so in practice it is the arm's own footprint.
func timedAllocs(f func() error) (time.Duration, uint64, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := f()
	d := time.Since(start)
	runtime.ReadMemStats(&after)
	return d, after.Mallocs - before.Mallocs, err
}

// kilo formats an allocation count compactly (1234 → "1.2k").
func kilo(n uint64) string {
	switch {
	case n >= 10_000_000:
		return fmt.Sprintf("%.0fM", float64(n)/1e6)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.0fk", float64(n)/1e3)
	case n >= 1_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	}
	return fmt.Sprint(n)
}

// allocsDelta formats a naive→optimized allocation comparison cell.
func allocsDelta(naive, opt uint64) string { return kilo(naive) + "→" + kilo(opt) }

// ms formats a duration in milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000.0)
}

// speedup formats a ratio.
func speedup(naive, opt time.Duration) string {
	if opt <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(naive)/float64(opt))
}

// B1 measures Example Query 5 (existential nesting over a base table):
// nested-loop execution versus the semijoin produced by Rule 1, executed
// set-oriented (hash-based set-probe join). The paper's claim (§1, §5): the
// join form admits efficient implementations; the nested loop is O(|X|·|Y|),
// the set-probe O(|X|+|Y|).
func B1(scales [][2]int, seed int64) (*bench.Table, error) {
	t := &bench.Table{
		Title: "B1 — EQ5: suppliers supplying red parts (σ[∃∃] vs semijoin)",
		Cols:  []string{"|SUPPLIER|", "|PART|", "nested-loop", "semijoin(NL)", "semijoin(hash)", "speedup(hash)", "allocs(NL→hash)"},
	}
	for _, sc := range scales {
		w := NewEQ5(sc[0], sc[1], seed)
		var naiveRes, optRes, optNLRes *value.Set
		naiveT, naiveA, err := timedAllocs(func() error { var e error; naiveRes, e = w.RunNaive(); return e })
		if err != nil {
			return nil, fmt.Errorf("B1 naive: %w", err)
		}
		optNLT, err := timed(func() error { var e error; optNLRes, e = w.RunOptNL(); return e })
		if err != nil {
			return nil, fmt.Errorf("B1 opt-nl: %w", err)
		}
		optT, optA, err := timedAllocs(func() error { var e error; optRes, e = w.RunOpt(); return e })
		if err != nil {
			return nil, fmt.Errorf("B1 opt: %w", err)
		}
		if !value.Equal(naiveRes, optRes) || !value.Equal(naiveRes, optNLRes) {
			return nil, fmt.Errorf("B1: results diverge at scale %v", sc)
		}
		t.AddRow(sc[0], sc[1], ms(naiveT), ms(optNLT), ms(optT), speedup(naiveT, optT), allocsDelta(naiveA, optA))
	}
	t.Notes = append(t.Notes,
		"all three arms verified equal; semijoin(NL) isolates the logical rewrite, semijoin(hash) adds the physical win")
	return t, nil
}

// B2 measures Example Query 4 (referential integrity, ¬∃ over a base
// table): nested loop versus μ + antijoin (attribute-unnest option plus
// Rule 1), hash-executed.
func B2(scales [][2]int, seed int64) (*bench.Table, error) {
	t := &bench.Table{
		Title: "B2 — EQ4: referential-integrity check (σ[∃¬∃] vs μ+antijoin)",
		Cols:  []string{"|SUPPLIER|", "|PART|", "nested-loop", "μ+antijoin(hash)", "speedup", "allocs(NL→opt)", "violations"},
	}
	for _, sc := range scales {
		w := NewEQ4(sc[0], sc[1], seed)
		var naiveRes, optRes *value.Set
		naiveT, naiveA, err := timedAllocs(func() error { var e error; naiveRes, e = w.RunNaive(); return e })
		if err != nil {
			return nil, fmt.Errorf("B2 naive: %w", err)
		}
		optT, optA, err := timedAllocs(func() error { var e error; optRes, e = w.RunOpt(); return e })
		if err != nil {
			return nil, fmt.Errorf("B2 opt: %w", err)
		}
		if !value.Equal(naiveRes, optRes) {
			return nil, fmt.Errorf("B2: results diverge at scale %v", sc)
		}
		t.AddRow(sc[0], sc[1], ms(naiveT), ms(optT), speedup(naiveT, optT), allocsDelta(naiveA, optA), naiveRes.Len())
	}
	return t, nil
}

// B3 measures grouping queries (the §5.2.2/§6.1 scenario): nested loop
// versus the nestjoin plan versus the buggy [GaWo87] join+nest plan, and
// counts the tuples the buggy plan loses as the fraction of dangling
// (empty-set) suppliers grows — the Complex Object bug made quantitative.
func B3(suppliers, parts int, emptyFracs []float64, seed int64) (*bench.Table, error) {
	t := &bench.Table{
		Title: "B3 — subset query: nested loop vs nestjoin vs join+nest [GaWo87] vs outerjoin repair",
		Cols:  []string{"empty%", "nested-loop", "nestjoin", "allocs(NL→nestjoin)", "join+nest", "lost tuples", "outerjoin", "correct size"},
	}
	for _, ef := range emptyFracs {
		w := NewSubset(suppliers, parts, ef, seed)
		var naiveRes, optRes *value.Set
		naiveT, naiveA, err := timedAllocs(func() error { var e error; naiveRes, e = w.RunNaive(); return e })
		if err != nil {
			return nil, fmt.Errorf("B3 naive: %w", err)
		}
		optT, optA, err := timedAllocs(func() error { var e error; optRes, e = w.RunOpt(); return e })
		if err != nil {
			return nil, fmt.Errorf("B3 opt: %w", err)
		}
		if !value.Equal(naiveRes, optRes) {
			return nil, fmt.Errorf("B3: nestjoin plan diverges at empty=%v", ef)
		}
		grouped, ok := w.GroupedPlan()
		if !ok {
			return nil, fmt.Errorf("B3: grouping plan not derivable")
		}
		var groupedRes *value.Set
		groupedT, err := timed(func() error {
			var e error
			groupedRes, e = eval.EvalSet(grouped, nil, w.Store)
			return e
		})
		if err != nil {
			return nil, fmt.Errorf("B3 grouped: %w", err)
		}
		lost := naiveRes.Diff(groupedRes).Len()

		repaired, ok := w.OuterRepairPlan()
		if !ok {
			return nil, fmt.Errorf("B3: outerjoin repair not derivable")
		}
		var repairedRes *value.Set
		repairedT, err := timed(func() error {
			var e error
			repairedRes, e = eval.EvalSet(repaired, nil, w.Store)
			return e
		})
		if err != nil {
			return nil, fmt.Errorf("B3 repaired: %w", err)
		}
		if !value.Equal(naiveRes, repairedRes) {
			return nil, fmt.Errorf("B3: outerjoin repair diverges at empty=%v", ef)
		}
		t.AddRow(fmt.Sprintf("%.0f%%", ef*100), ms(naiveT), ms(optT), allocsDelta(naiveA, optA),
			ms(groupedT), lost, ms(repairedT), naiveRes.Len())
	}
	t.Notes = append(t.Notes,
		"join+nest silently loses exactly the suppliers whose subquery is empty (the Complex Object bug)",
		"the Table 3 guard refuses that plan: P(x, ∅) = (parts ⊆ ∅) is run-time dependent",
		"the [GaWo87] outerjoin repair (§5.2.2) is correct but pays the wider join; the nestjoin needs neither nulls nor repair")
	return t, nil
}

// B4 measures materializing a set-valued attribute against a base table
// ([DeLa92], §6.2): naive per-tuple loop, unnest–join–nest, the set-probe
// nestjoin, and PNHL across build-side memory budgets.
func B4(suppliers, parts, fanout int, budgets []int, seed int64) (*bench.Table, error) {
	t := &bench.Table{
		Title: fmt.Sprintf("B4 — materialize parts (fanout %d): PNHL vs alternatives", fanout),
		Cols:  []string{"arm", "budget(rows)", "segments", "time", "allocs/run", "result size"},
	}
	m := NewMaterialize(suppliers, parts, fanout, seed)
	var naiveRes *value.Set
	naiveT, naiveA, err := timedAllocs(func() error { var e error; naiveRes, e = m.RunNaive(); return e })
	if err != nil {
		return nil, fmt.Errorf("B4 naive: %w", err)
	}
	t.AddRow("nested-loop", "-", "-", ms(naiveT), kilo(naiveA), naiveRes.Len())

	var njRes *value.Set
	njT, njA, err := timedAllocs(func() error { var e error; njRes, e = m.RunNestjoin(); return e })
	if err != nil {
		return nil, fmt.Errorf("B4 nestjoin: %w", err)
	}
	if !value.Equal(naiveRes, njRes) {
		return nil, fmt.Errorf("B4: nestjoin arm diverges")
	}
	t.AddRow("nestjoin(set-probe)", "-", "-", ms(njT), kilo(njA), njRes.Len())

	var ujnLen int
	ujnT, ujnA, err := timedAllocs(func() error { var e error; ujnLen, e = m.RunUnnestJoinNest(); return e })
	if err != nil {
		return nil, fmt.Errorf("B4 unnest-join-nest: %w", err)
	}
	t.AddRow("unnest-join-nest", "-", "-", ms(ujnT), kilo(ujnA), ujnLen)

	for _, b := range budgets {
		var pnhlRes *value.Set
		var segs int
		pnhlT, pnhlA, err := timedAllocs(func() error {
			var e error
			pnhlRes, segs, e = m.RunPNHL(b)
			return e
		})
		if err != nil {
			return nil, fmt.Errorf("B4 PNHL(%d): %w", b, err)
		}
		if !value.Equal(naiveRes, pnhlRes) {
			return nil, fmt.Errorf("B4: PNHL(%d) diverges", b)
		}
		label := fmt.Sprint(b)
		if b == 0 {
			label = "unlimited"
		}
		t.AddRow("PNHL", label, segs, ms(pnhlT), kilo(pnhlA), pnhlRes.Len())
	}
	t.Notes = append(t.Notes,
		"unnest-join-nest loses suppliers with empty part sets (result size vs the others) and pays restructuring",
		"only the flat table can be PNHL's build input; budgets below the build size add probe passes")
	return t, nil
}

// B5 measures pointer-based materialization ([BlMG93], §6.2): value-based
// hash join versus assembly via oid dereferencing, with page-level I/O
// counts from the store.
func B5(scales [][2]int, seed int64) (*bench.Table, error) {
	t := &bench.Table{
		Title: "B5 — materialize d.supplier: value hash join vs pointer-based assembly",
		Cols:  []string{"|SUPPLIER|", "|DELIVERY|", "hash join", "assembly", "speedup", "allocs(hash→asm)", "object reads"},
	}
	for _, sc := range scales {
		p := NewPointerJoin(sc[0], sc[1], seed)
		var hjRes, asRes *value.Set
		hjT, hjA, err := timedAllocs(func() error { var e error; hjRes, e = p.RunHashJoin(); return e })
		if err != nil {
			return nil, fmt.Errorf("B5 hash: %w", err)
		}
		p.Store.ResetStats()
		asT, asA, err := timedAllocs(func() error { var e error; asRes, e = p.RunAssembly(); return e })
		if err != nil {
			return nil, fmt.Errorf("B5 assembly: %w", err)
		}
		reads := p.Store.Stats().ObjectReads
		if !value.Equal(hjRes, asRes) {
			return nil, fmt.Errorf("B5: results diverge at scale %v", sc)
		}
		t.AddRow(sc[0], sc[1], ms(hjT), ms(asT), speedup(hjT, asT), allocsDelta(hjA, asA), reads)
	}
	t.Notes = append(t.Notes,
		"assembly touches exactly one object per reference; the hash join scans and hashes the whole supplier extent")
	return t, nil
}

// B6 measures the quantifier-exchange heuristic (Rewriting Example 3): the
// nested ∀⊇ query versus the exchanged antijoin form.
func B6(scales [][2]int, seed int64) (*bench.Table, error) {
	t := &bench.Table{
		Title: "B6 — ∀z ∈ x.c • z ⊇ Y′: nested loop vs exchanged antijoin",
		Cols:  []string{"|X|", "|Y|", "nested-loop", "antijoin", "speedup", "allocs(NL→anti)"},
	}
	for _, sc := range scales {
		db, naive, opt := NewForallExchange(sc[0], sc[1], seed)
		var naiveRes, optRes *value.Set
		naiveT, naiveA, err := timedAllocs(func() error {
			var e error
			naiveRes, e = eval.EvalSet(naive, nil, db)
			return e
		})
		if err != nil {
			return nil, fmt.Errorf("B6 naive: %w", err)
		}
		optT, optA, err := timedAllocs(func() error {
			var e error
			optRes, e = eval.EvalSet(opt, nil, db)
			return e
		})
		if err != nil {
			return nil, fmt.Errorf("B6 opt: %w", err)
		}
		if !value.Equal(naiveRes, optRes) {
			return nil, fmt.Errorf("B6: results diverge at scale %v", sc)
		}
		t.AddRow(sc[0], sc[1], ms(naiveT), ms(optT), speedup(naiveT, optT), allocsDelta(naiveA, optA))
	}
	t.Notes = append(t.Notes,
		"the antijoin evaluates the uncorrelated subquery once and stops at the first witness",
	)
	return t, nil
}

// B7 measures the end-to-end §4 strategy on the paper's example queries:
// naive nested-loop execution versus optimize + plan + execute (including
// rewrite and planning time in the optimized arm).
func B7(suppliers, parts int, seed int64) (*bench.Table, error) {
	t := &bench.Table{
		Title: fmt.Sprintf("B7 — end-to-end strategy at |SUPPLIER|=%d, |PART|=%d", suppliers, parts),
		Cols:  []string{"query", "options used", "nested-loop", "optimized", "speedup", "allocs(NL→opt)"},
	}
	mk := []func() *Workload{
		func() *Workload { return NewEQ5(suppliers, parts, seed) },
		func() *Workload { return NewEQ4(suppliers, parts, seed) },
		func() *Workload { return NewEQ6(suppliers/4, parts, seed) },
		func() *Workload { return NewSubset(suppliers, parts, 0.1, seed) },
	}
	for _, f := range mk {
		w := f()
		var naiveRes, optRes *value.Set
		naiveT, naiveA, err := timedAllocs(func() error { var e error; naiveRes, e = w.RunNaive(); return e })
		if err != nil {
			return nil, fmt.Errorf("B7 %s naive: %w", w.Name, err)
		}
		optT, optA, err := timedAllocs(func() error { var e error; optRes, e = w.RunOpt(); return e })
		if err != nil {
			return nil, fmt.Errorf("B7 %s opt: %w", w.Name, err)
		}
		if !value.Equal(naiveRes, optRes) {
			return nil, fmt.Errorf("B7 %s: results diverge", w.Name)
		}
		opts := "nested-loop"
		if len(w.Rewrite.OptionsUsed) > 0 {
			opts = fmt.Sprint(w.Rewrite.OptionsUsed)
		}
		t.AddRow(w.Name, opts, ms(naiveT), ms(optT), speedup(naiveT, optT), allocsDelta(naiveA, optA))
	}
	return t, nil
}

// B9 measures the cost-based optimizer against every forced physical join
// strategy on three workloads: an asymmetric inner join (small × large,
// where hash-join build-side swapping pays), a small grouping join (where
// everything should stay serial) and a large grouping join (where the
// partitioned parallel variant pays). Every arm is verified against the
// forced hash join before its time is reported. With analyze set the
// optimizer arm plans from collected statistics (storage.Analyze); without,
// it falls back to the size-threshold heuristic.
func B9(suppliers, deliveries, parallelism int, analyze bool, seed int64) (*bench.Table, error) {
	mode := "cost-based (ANALYZE)"
	if !analyze {
		mode = "threshold fallback, -analyze=false"
	}
	t := &bench.Table{
		Title: fmt.Sprintf("B9 — forced join strategies vs optimizer choice (%s)", mode),
		Cols:  []string{"workload", "arm", "time", "allocs/run", "result size"},
	}
	workloads := []*StrategyArms{
		NewStrategyJoin(fmt.Sprintf("inner_asym[%dx%d]", suppliers/10, deliveries),
			adl.Inner, suppliers/10, deliveries, parallelism, seed),
		NewStrategyJoin(fmt.Sprintf("group_small[%dx%d]", suppliers/4, deliveries/20),
			adl.NestJ, suppliers/4, deliveries/20, parallelism, seed),
		NewStrategyJoin(fmt.Sprintf("group_big[%dx%d]", suppliers, deliveries),
			adl.NestJ, suppliers, deliveries, parallelism, seed),
	}
	for _, w := range workloads {
		// No timed arm pays the store's one-off extent materialization, and
		// the ANALYZE pass is timed on its own rather than charged to the
		// optimizer arm.
		if err := w.Warm(); err != nil {
			return nil, fmt.Errorf("B9 %s: warm: %w", w.Name, err)
		}
		if analyze {
			analyzeT, err := timed(func() error { w.Statistics(); return nil })
			if err != nil {
				return nil, err
			}
			t.AddRow(w.Name, "ANALYZE (one-off)", ms(analyzeT), "-", "-")
		}
		var ref *value.Set
		for _, arm := range w.Arms() {
			var res *value.Set
			d, allocs, err := timedAllocs(func() error { var e error; res, e = w.RunForced(arm); return e })
			if err != nil {
				return nil, fmt.Errorf("B9 %s/%s: %w", w.Name, arm, err)
			}
			if ref == nil {
				ref = res
			} else if !value.Equal(res, ref) {
				return nil, fmt.Errorf("B9 %s: arm %s diverges", w.Name, arm)
			}
			t.AddRow(w.Name, arm, ms(d), kilo(allocs), res.Len())
		}
		var optRes *value.Set
		var chosen string
		d, allocs, err := timedAllocs(func() error {
			var e error
			optRes, chosen, e = w.RunOptimizer(analyze)
			return e
		})
		if err != nil {
			return nil, fmt.Errorf("B9 %s/optimizer: %w", w.Name, err)
		}
		if !value.Equal(optRes, ref) {
			return nil, fmt.Errorf("B9 %s: optimizer arm diverges", w.Name)
		}
		t.AddRow(w.Name, "optimizer→"+chosen, ms(d), kilo(allocs), optRes.Len())
		t.Notes = append(t.Notes, fmt.Sprintf("%s: optimizer chose %s", w.Name, chosen))
	}
	return t, nil
}

// B10 measures join-order enumeration on the four-extent star workload: the
// same nested join chain — written worst-first — planned with the two-phase
// optimizer's enumerated order versus the written (rewriter) order, both
// with cost-based physical selection from the same collected statistics.
// Every arm is verified against the rule-based reference result before its
// time is reported, and the optimizer's estimated plan costs are recorded
// next to the wall times so the claim "the enumerated order is cheaper" is
// visible in both currencies.
func B10(orders, items, custs, regions, parallelism int, seed int64) (*bench.Table, error) {
	t := &bench.Table{
		Title: "B10 — star join: enumerated join order vs rewriter order",
		Cols:  []string{"workload", "arm", "est. plan cost", "time", "allocs/run", "result size"},
	}
	w := NewStarJoin(orders, items, custs, regions, parallelism, seed)
	if err := w.Warm(); err != nil {
		return nil, fmt.Errorf("B10 %s: warm: %w", w.Name, err)
	}
	analyzeT, err := timed(func() error { w.Statistics(); return nil })
	if err != nil {
		return nil, err
	}
	t.AddRow(w.Name, "ANALYZE (one-off)", "-", ms(analyzeT), "-", "-")

	ref, err := w.RunReference()
	if err != nil {
		return nil, fmt.Errorf("B10 %s: reference: %w", w.Name, err)
	}

	type arm struct {
		label   string
		reorder bool
	}
	costs := map[string]float64{}
	for _, a := range []arm{{"rewriter order", false}, {"enumerated order", true}} {
		var res *value.Set
		var pl *plan.Plan
		d, allocs, err := timedAllocs(func() error {
			var e error
			res, pl, e = w.Run(a.reorder)
			return e
		})
		if err != nil {
			return nil, fmt.Errorf("B10 %s/%s: %w", w.Name, a.label, err)
		}
		if !value.Equal(res, ref) {
			return nil, fmt.Errorf("B10 %s: %s arm diverges from the reference", w.Name, a.label)
		}
		est, ok := pl.Estimate(pl.Root)
		if !ok {
			return nil, fmt.Errorf("B10 %s: %s arm not annotated", w.Name, a.label)
		}
		costs[a.label] = est.Cost
		t.AddRow(w.Name, a.label, fmt.Sprintf("%.0f", est.Cost), ms(d), kilo(allocs), res.Len())
		if a.reorder {
			if note := est.Note; note != "" {
				t.Notes = append(t.Notes, fmt.Sprintf("%s: %s", w.Name, note))
			}
		}
	}
	if costs["enumerated order"] >= costs["rewriter order"] {
		return nil, fmt.Errorf("B10 %s: enumerated order (%.0f) is not cheaper than rewriter order (%.0f)",
			w.Name, costs["enumerated order"], costs["rewriter order"])
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("enumerated order is %.1fx cheaper by the cost model",
			costs["rewriter order"]/costs["enumerated order"]),
		"both arms run the same physical operator repertoire; only the join order differs")
	return t, nil
}

// B11 measures index-aware planning on the selective lookup join: a filter
// that keeps one supplier joined against a large delivery extent. The forced
// arms run the best scan-based plans (hash join with either build side); the
// optimizer arm plans from collected statistics that record the secondary
// indexes and should choose an IndexScan leaf feeding an index-nested-loop
// join. Every arm is verified identical before its time is reported, and
// the store's I/O meters are reset around each arm so the page-level win is
// visible next to the wall-clock one. With indexes present the experiment
// asserts the index plan is chosen and strictly cheaper in both currencies;
// with -indexes=false it degrades to an informational A/B of the same query
// planned without indexes.
func B11(suppliers, deliveries, parallelism int, indexes bool, seed int64) (*bench.Table, error) {
	mode := "indexes on"
	if !indexes {
		mode = "-indexes=false control"
	}
	t := &bench.Table{
		Title: fmt.Sprintf("B11 — selective lookup join: forced hash vs index-nested-loop (%s)", mode),
		Cols:  []string{"workload", "arm", "time", "allocs/run", "page reads", "index probes", "result size"},
	}
	w := NewLookupJoin(suppliers, deliveries, parallelism, indexes, seed)
	if err := w.Warm(); err != nil {
		return nil, fmt.Errorf("B11 %s: warm: %w", w.Name, err)
	}
	analyzeT, err := timed(func() error { w.Statistics(); return nil })
	if err != nil {
		return nil, err
	}
	t.AddRow(w.Name, "ANALYZE (one-off)", ms(analyzeT), "-", "-", "-", "-")

	type armResult struct {
		time  time.Duration
		pages int
	}
	results := map[string]armResult{}
	var ref *value.Set
	// Each arm runs three times and reports its best wall time: the page
	// and probe meters are deterministic per run, but a single-sample
	// wall-clock comparison would let one GC pause or scheduler hiccup fail
	// the experiment's faster-than assertion in CI.
	runArm := func(label string, f func() (*value.Set, error)) error {
		var best time.Duration
		var bestA uint64
		var pages, probes int
		var res *value.Set
		for i := 0; i < 3; i++ {
			w.Store.ResetStats()
			d, allocs, err := timedAllocs(func() error { var e error; res, e = f(); return e })
			if err != nil {
				return fmt.Errorf("B11 %s/%s: %w", w.Name, label, err)
			}
			st := w.Store.Stats()
			if i == 0 || d < best {
				best = d
			}
			if i == 0 || allocs < bestA {
				bestA = allocs
			}
			pages, probes = st.PageReads, st.IndexProbes
		}
		if ref == nil {
			ref = res
		} else if !value.Equal(res, ref) {
			return fmt.Errorf("B11 %s: arm %s diverges", w.Name, label)
		}
		results[label] = armResult{time: best, pages: pages}
		t.AddRow(w.Name, label, ms(best), kilo(bestA), pages, probes, res.Len())
		return nil
	}
	if err := runArm("hash (build DELIVERY)", func() (*value.Set, error) {
		return w.RunForcedHash(false)
	}); err != nil {
		return nil, err
	}
	if err := runArm("hash (build σSUPPLIER)", func() (*value.Set, error) {
		return w.RunForcedHash(true)
	}); err != nil {
		return nil, err
	}
	var chosen string
	if err := runArm("optimizer", func() (*value.Set, error) {
		var res *value.Set
		var e error
		res, chosen, e = w.RunOptimizer()
		return res, e
	}); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%s: optimizer chose %s", w.Name, chosen))

	if indexes {
		if chosen != "IndexNLJoin" {
			return nil, fmt.Errorf("B11 %s: optimizer chose %s, want IndexNLJoin", w.Name, chosen)
		}
		opt := results["optimizer"]
		for _, hash := range []string{"hash (build DELIVERY)", "hash (build σSUPPLIER)"} {
			h := results[hash]
			if opt.time >= h.time {
				return nil, fmt.Errorf("B11 %s: index plan (%v) not faster than %s (%v)",
					w.Name, opt.time, hash, h.time)
			}
			if opt.pages >= h.pages {
				return nil, fmt.Errorf("B11 %s: index plan (%d page reads) not cheaper than %s (%d)",
					w.Name, opt.pages, hash, h.pages)
			}
		}
		t.Notes = append(t.Notes,
			fmt.Sprintf("index plan is %s vs best hash arm, and touches %d pages vs %d",
				speedup(min(results["hash (build DELIVERY)"].time, results["hash (build σSUPPLIER)"].time), opt.time),
				opt.pages, results["hash (build σSUPPLIER)"].pages),
			"the probe side never scans DELIVERY: per-probe index lookups replace the full hash build")
	}
	return t, nil
}

// B12 measures histogram-based cardinality estimation on the Zipf-skewed
// star join: the same query planned twice from the same collected
// statistics — once with histograms (the default) and once under
// plan.Config.NoHistograms (the pre-histogram NDV model). The skewed
// DIMA filter keeps the heavy-hitter category, so the NDV arm
// underestimates it badly, probes FACT with the wrong dimension first, and
// drags a several-times-larger intermediate through the rest of the plan.
// The experiment asserts the two arms choose different join orders, return
// the identical (reference-verified) result, and that the histogram arm is
// strictly better on both wall time (best of three) and page reads.
func B12(facts, dims, parallelism int, seed int64) (*bench.Table, error) {
	t := &bench.Table{
		Title: "B12 — skewed star join: histogram estimates vs the NDV-only model",
		Cols:  []string{"workload", "arm", "est. plan cost", "time", "allocs/run", "page reads", "result size"},
	}
	w := NewSkewJoin(facts, dims, parallelism, seed)
	if err := w.Warm(); err != nil {
		return nil, fmt.Errorf("B12 %s: warm: %w", w.Name, err)
	}
	analyzeT, err := timed(func() error { w.Statistics(); return nil })
	if err != nil {
		return nil, err
	}
	t.AddRow(w.Name, "ANALYZE (one-off)", "-", ms(analyzeT), "-", "-", "-")

	ref, err := w.RunReference()
	if err != nil {
		return nil, fmt.Errorf("B12 %s: reference: %w", w.Name, err)
	}

	type armResult struct {
		time    time.Duration
		pages   int
		cost    float64
		explain string
	}
	results := map[string]armResult{}
	// Best wall time of three runs, like B11: the page meter is
	// deterministic per run, but a single wall-clock sample would let one GC
	// pause fail the strictly-faster assertion in CI.
	runArm := func(label string, noHist bool) error {
		var best time.Duration
		var bestA uint64
		var pages int
		var res *value.Set
		var pl *plan.Plan
		for i := 0; i < 3; i++ {
			w.Store.ResetStats()
			d, allocs, err := timedAllocs(func() error {
				var e error
				res, pl, e = w.Run(noHist)
				return e
			})
			if err != nil {
				return fmt.Errorf("B12 %s/%s: %w", w.Name, label, err)
			}
			if i == 0 || d < best {
				best = d
			}
			if i == 0 || allocs < bestA {
				bestA = allocs
			}
			pages = w.Store.Stats().PageReads
		}
		if !value.Equal(res, ref) {
			return fmt.Errorf("B12 %s: arm %s diverges from the reference", w.Name, label)
		}
		est, ok := pl.Estimate(pl.Root)
		if !ok {
			return fmt.Errorf("B12 %s: arm %s not annotated", w.Name, label)
		}
		results[label] = armResult{time: best, pages: pages, cost: est.Cost,
			explain: pl.Explain()}
		t.AddRow(w.Name, label, fmt.Sprintf("%.0f", est.Cost), ms(best), kilo(bestA), pages, res.Len())
		return nil
	}
	if err := runArm("ndv (NoHistograms)", true); err != nil {
		return nil, err
	}
	if err := runArm("histograms", false); err != nil {
		return nil, err
	}
	ndv, hist := results["ndv (NoHistograms)"], results["histograms"]

	// The claim is a planning one first: the two arms must disagree about
	// the join order — the NDV model probes FACT with the skew-fooled σDIMA,
	// the histogram model with the genuinely selective σDIMB.
	if hist.explain == ndv.explain {
		return nil, fmt.Errorf("B12 %s: histograms did not change the plan:\n%s",
			w.Name, hist.explain)
	}
	if !strings.Contains(ndv.explain, "index probe into FACT.fa") {
		return nil, fmt.Errorf("B12 %s: NDV arm did not probe with σDIMA first:\n%s",
			w.Name, ndv.explain)
	}
	if !strings.Contains(hist.explain, "index probe into FACT.fb") {
		return nil, fmt.Errorf("B12 %s: histogram arm did not probe with σDIMB first:\n%s",
			w.Name, hist.explain)
	}
	// …and a measured one second: strictly fewer pages and strictly faster.
	if hist.pages >= ndv.pages {
		return nil, fmt.Errorf("B12 %s: histogram plan (%d page reads) not cheaper than NDV plan (%d)",
			w.Name, hist.pages, ndv.pages)
	}
	if hist.time >= ndv.time {
		return nil, fmt.Errorf("B12 %s: histogram plan (%v) not faster than NDV plan (%v)",
			w.Name, hist.time, ndv.time)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("skewed filter: DIMA.cat = %s (the heavy hitter)", w.HotCat),
		fmt.Sprintf("histogram plan is %s and touches %d pages vs %d",
			speedup(ndv.time, hist.time), hist.pages, ndv.pages),
		"both arms plan from the same ANALYZE pass; only Config.NoHistograms differs",
		"the NDV arm under-estimates the hot-category filter and probes FACT with the wrong dimension first")
	return t, nil
}

// B8 measures the parallel partitioned hash join against the serial hash
// join on the supplier-deliveries grouping join, across database scales.
// The parallel arm is verified against the serial result before its time is
// reported. parallelism > 0 sets the partition count, negative means one
// partition per CPU, and 0 keeps the second arm serial as a sweep control.
func B8(scales [][2]int, parallelism int, seed int64) (*bench.Table, error) {
	mode := fmt.Sprintf("%d partitions", exec.Parallelism(parallelism))
	if parallelism == 0 {
		mode = "serial control, -parallel 0"
	}
	t := &bench.Table{
		Title: fmt.Sprintf("B8 — grouping join: serial HashJoin vs PartitionedHashJoin (%s)", mode),
		Cols:  []string{"|SUPPLIER|", "|DELIVERY|", "serial", "parallel", "speedup", "allocs(ser→par)"},
	}
	for _, sc := range scales {
		p := NewParallelJoin(sc[0], sc[1], parallelism, seed)
		var serialRes, parallelRes *value.Set
		serialT, serialA, err := timedAllocs(func() error { var e error; serialRes, e = p.RunSerial(); return e })
		if err != nil {
			return nil, fmt.Errorf("B8 serial: %w", err)
		}
		parallelT, parallelA, err := timedAllocs(func() error { var e error; parallelRes, e = p.RunParallel(); return e })
		if err != nil {
			return nil, fmt.Errorf("B8 parallel: %w", err)
		}
		if !value.Equal(serialRes, parallelRes) {
			return nil, fmt.Errorf("B8: results diverge at scale %v", sc)
		}
		t.AddRow(sc[0], sc[1], ms(serialT), ms(parallelT), speedup(serialT, parallelT), allocsDelta(serialA, parallelA))
	}
	t.Notes = append(t.Notes,
		"both operands are hash-partitioned on the join key; each partition builds and probes on its own goroutine")
	return t, nil
}

// B13 measures vectorized batch execution (plan.Config.Vectorized) on the
// large equi-join + filter pipeline: σ(date < cutoff)(DELIVERY) semi-joined
// with SUPPLIER. Both arms execute the identical logical plan — the scalar
// operators interpret the predicate and probe row at a time, the vectorized
// pipeline runs typed comparison kernels over the store's columnar extent
// projection and probes a flat hash table batch at a time. Arms are
// execution-only: plans are compiled once and every run executes a clone of
// the cached tree, the serving path's shape. Wall time is best of three;
// allocations are the smallest per-run runtime.MemStats Mallocs delta, so
// one-off cache warming never counts. At full scale (suppliers ≥ 400) the
// experiment asserts the tentpole claims: ≥3× faster wall, ≥10× fewer
// allocations per run.
func B13(suppliers, deliveries, batch int, seed int64) (*bench.Table, error) {
	t := &bench.Table{
		Title: "B13 — vectorized batch execution: scalar vs columnar kernels (semi-join pipeline)",
		Cols:  []string{"|SUPPLIER|", "|DELIVERY|", "arm", "time", "allocs/run", "result size"},
	}
	w := NewVecJoin(suppliers, deliveries, batch, seed)
	if err := w.Warm(); err != nil {
		return nil, fmt.Errorf("B13 %s: warm: %w", w.Name, err)
	}

	type armResult struct {
		time   time.Duration
		allocs uint64
		res    *value.Set
	}
	runArm := func(vectorized bool) (armResult, error) {
		pl := w.Plan(vectorized)
		ctx := &exec.Ctx{DB: w.Store}
		var out armResult
		for i := 0; i < 3; i++ {
			tree := exec.CloneTree(pl.Root)
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			var res *value.Set
			d, err := timed(func() error {
				var e error
				res, e = exec.Collect(tree, ctx)
				return e
			})
			if err != nil {
				return out, err
			}
			runtime.ReadMemStats(&after)
			allocs := after.Mallocs - before.Mallocs
			if i == 0 || d < out.time {
				out.time = d
			}
			if i == 0 || allocs < out.allocs {
				out.allocs = allocs
			}
			out.res = res
		}
		return out, nil
	}

	scalar, err := runArm(false)
	if err != nil {
		return nil, fmt.Errorf("B13 %s: scalar: %w", w.Name, err)
	}
	vec, err := runArm(true)
	if err != nil {
		return nil, fmt.Errorf("B13 %s: vectorized: %w", w.Name, err)
	}
	if !value.Equal(scalar.res, vec.res) {
		return nil, fmt.Errorf("B13 %s: vectorized result diverges from scalar", w.Name)
	}
	t.AddRow(suppliers, deliveries, "scalar", ms(scalar.time), kilo(scalar.allocs), scalar.res.Len())
	t.AddRow(suppliers, deliveries, "vectorized", ms(vec.time), kilo(vec.allocs), vec.res.Len())

	// The tentpole claims are asserted at full scale only; smoke scales
	// (adlbench -quick, tests) print the comparison without gating on it.
	if suppliers >= 400 {
		if vec.time*3 > scalar.time {
			return nil, fmt.Errorf("B13 %s: vectorized (%v) not ≥3x faster than scalar (%v)",
				w.Name, vec.time, scalar.time)
		}
		if vec.allocs*10 > scalar.allocs {
			return nil, fmt.Errorf("B13 %s: vectorized (%d allocs) not ≥10x leaner than scalar (%d)",
				w.Name, vec.allocs, scalar.allocs)
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("identical results; vectorized is %s and allocates %.0fx less",
			speedup(scalar.time, vec.time),
			float64(scalar.allocs)/math.Max(1, float64(vec.allocs))),
		"execution-only arms: cached plan, per-run clone — the serving path's shape",
		"the vectorized arm reads the snapshot-pinned columnar projection and probes a flat int64 table")
	return t, nil
}

// B14 measures parallel vectorized execution end to end: the B13 semi-join
// pipeline compiled four ways from identical logical form — the scalar
// reference, the parallel partitioned operators, the vectorized batch
// kernels, and both combined: a morsel-driven VecExchange claims row ranges
// of the columnar projection, applies the filter kernels on worker
// goroutines, and hands whole batches over bounded channels to the
// partitioned batch hash join (no per-tuple sends anywhere on that path).
// Every arm's result must equal the scalar reference. At full scale on a
// ≥4-core host the parallel-vectorized arm must at least halve the
// single-threaded vectorized wall time; smoke scales and smaller hosts
// print the comparison without gating on it.
func B14(suppliers, deliveries, batch, parallelism int, seed int64) (*bench.Table, error) {
	t := &bench.Table{
		Title: "B14 — parallel vectorized execution: four-way A/B (semi-join pipeline)",
		Cols:  []string{"|SUPPLIER|", "|DELIVERY|", "arm", "workers", "time", "allocs/run", "result size"},
	}
	w := NewVecJoin(suppliers, deliveries, batch, seed)
	if err := w.Warm(); err != nil {
		return nil, fmt.Errorf("B14 %s: warm: %w", w.Name, err)
	}
	workers := exec.Parallelism(parallelism)

	type armResult struct {
		time   time.Duration
		allocs uint64
		res    *value.Set
	}
	runArm := func(vectorized, parallel bool) (armResult, error) {
		pl := w.PlanArm(vectorized, parallel, parallelism)
		ctx := &exec.Ctx{DB: w.Store}
		var out armResult
		for i := 0; i < 3; i++ {
			tree := exec.CloneTree(pl.Root)
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			var res *value.Set
			d, err := timed(func() error {
				var e error
				res, e = exec.Collect(tree, ctx)
				return e
			})
			if err != nil {
				return out, err
			}
			runtime.ReadMemStats(&after)
			allocs := after.Mallocs - before.Mallocs
			if i == 0 || d < out.time {
				out.time = d
			}
			if i == 0 || allocs < out.allocs {
				out.allocs = allocs
			}
			out.res = res
		}
		return out, nil
	}

	arms := []struct {
		name       string
		vectorized bool
		parallel   bool
	}{
		{"scalar", false, false},
		{"parallel", false, true},
		{"vectorized", true, false},
		{"parallel-vectorized", true, true},
	}
	results := map[string]armResult{}
	for _, arm := range arms {
		r, err := runArm(arm.vectorized, arm.parallel)
		if err != nil {
			return nil, fmt.Errorf("B14 %s: %s: %w", w.Name, arm.name, err)
		}
		if arm.name != "scalar" && !value.Equal(results["scalar"].res, r.res) {
			return nil, fmt.Errorf("B14 %s: %s result diverges from scalar", w.Name, arm.name)
		}
		results[arm.name] = r
		armWorkers := 1
		if arm.parallel {
			armWorkers = workers
		}
		t.AddRow(suppliers, deliveries, arm.name, armWorkers, ms(r.time), kilo(r.allocs), r.res.Len())
	}

	// The ≥2x claim needs real cores; single-core hosts and smoke scales
	// print the four-way comparison without gating on it.
	vec, parvec := results["vectorized"], results["parallel-vectorized"]
	if suppliers >= 400 && runtime.NumCPU() >= 4 {
		if parvec.time*2 > vec.time {
			return nil, fmt.Errorf("B14 %s: parallel-vectorized (%v) not ≥2x faster than vectorized (%v) on %d cores",
				w.Name, parvec.time, vec.time, runtime.NumCPU())
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("identical results across all four arms; parallel-vectorized is %s vs vectorized (%d workers, %d cores)",
			speedup(vec.time, parvec.time), workers, runtime.NumCPU()),
		"execution-only arms: cached plan, per-run clone — the serving path's shape",
		"the parallel-vectorized arm exchanges whole batches over bounded channels: no per-tuple sends")
	return t, nil
}
