package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/adl"
	"repro/internal/bench"
	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/rewrite"
	"repro/internal/schema"
	"repro/internal/translate"
	"repro/internal/types"
	"repro/internal/value"
)

// Artifacts regenerates the paper's tables, figures, rewriting examples and
// example queries, each by running the implementation (no hard-coded
// outputs). Keys: T1 T2 T3 F1 F2 F3 RE1 RE2 RE3 EQ.
func Artifacts() map[string]func() (string, error) {
	return map[string]func() (string, error){
		"T1":  Table1,
		"T2":  Table2,
		"T3":  Table3,
		"F1":  Figure1,
		"F2":  Figure2,
		"F3":  Figure3,
		"RE1": RewritingExample1,
		"RE2": RewritingExample2,
		"RE3": RewritingExample3,
		"EQ":  ExampleQueries,
	}
}

// ArtifactKeys lists the artifact identifiers in presentation order.
func ArtifactKeys() []string {
	return []string{"T1", "T2", "T3", "F1", "F2", "F3", "RE1", "RE2", "RE3", "EQ"}
}

// abstractCtx types the symbolic tables used in Table 1/2 derivations:
// X : {(a: int, c: {int})} (or set-of-sets where needed) and Y' : {int}-ish.
// The free variable x is bound to X's element type so the set-typedness
// checks of the = expansion can see it.
func abstractCtx(setOfSets bool) *rewrite.Context {
	var c types.Type = types.NewSet(types.IntType)
	if setOfSets {
		c = types.NewSet(types.NewSet(types.IntType))
	}
	xt := types.NewTuple("a", types.IntType, "c", c)
	ctx := rewrite.NewStaticContext(map[string]*types.Tuple{
		"X":  xt,
		"Y'": types.NewTuple("d", types.IntType),
	})
	ctx.Env["x"] = xt
	return ctx
}

// notForallAny is the unrestricted ¬∀ ⇒ ∃¬ used only for presenting
// Table 1 in the paper's mixed ∀/∃ style (the optimizer's restricted
// variants are table-driven).
var notForallAny = rewrite.Rule{
	Name: "not-forall",
	Apply: func(e adl.Expr, _ *rewrite.Context) (adl.Expr, bool) {
		n, ok := e.(*adl.Not)
		if !ok {
			return e, false
		}
		q, ok := n.X.(*adl.Quant)
		if !ok || q.Kind != adl.Forall {
			return e, false
		}
		return adl.Ex(q.Var, q.Src, adl.NotE(q.Pred)), true
	},
}

// notNotRule folds double negation for presentation.
var notNotRule = rewrite.Rule{
	Name: "not-not",
	Apply: func(e adl.Expr, _ *rewrite.Context) (adl.Expr, bool) {
		if n, ok := e.(*adl.Not); ok {
			if inner, ok := n.X.(*adl.Not); ok {
				return inner.X, true
			}
		}
		return e, false
	},
}

// expandTable1 derives a Table 1 row: comparison expansion plus the
// presentation-level negation folding, keeping universal quantifiers in the
// paper's style. For the ∋ row the paper stops at ∃z ∈ x.c • z = Y′, so the
// set-equality expansion is withheld there.
func expandTable1(p adl.Expr, setOfSets bool) adl.Expr {
	var rules []rewrite.Rule
	for _, r := range rewrite.ExpandRules() {
		if setOfSets && r.Name == "expand-seteq" {
			continue
		}
		rules = append(rules, r)
	}
	rules = append(rules, notForallAny, notNotRule)
	en := rewrite.NewEngine(rules)
	return en.Run(p, abstractCtx(setOfSets))
}

// expandFully runs the full expansion, quantifier-exchange and negation
// machinery to a fixpoint — the Table 2 derivations, which end in the
// (negated) existential forms suitable for unnesting.
func expandFully(p adl.Expr, setOfSets bool) adl.Expr {
	rules := append(rewrite.ExpandRules(), rewrite.QuantRules()...)
	rules = append(rules, rewrite.NegationRules()...)
	en := rewrite.NewEngine(rules)
	return en.Run(p, abstractCtx(setOfSets))
}

// Table1 regenerates the paper's Table 1: rewriting set comparison
// operations into quantifier expressions. Each row is derived by the
// rewrite engine from the comparison template.
func Table1() (string, error) {
	xc := adl.Dot(adl.V("x"), "c")
	yp := adl.T("Y'")
	rows := []struct {
		template adl.Expr
		setOfSet bool
	}{
		{adl.CmpE(adl.In, xc, yp), false},    // here x.c is atomic-ish; In expands regardless
		{adl.CmpE(adl.Sub, xc, yp), false},   // ⊂
		{adl.CmpE(adl.SubEq, xc, yp), false}, // ⊆
		{adl.EqE(xc, yp), false},             // = (sets)
		{adl.CmpE(adl.SupEq, xc, yp), false}, // ⊇
		{adl.CmpE(adl.Sup, xc, yp), false},   // ⊃
		{adl.CmpE(adl.Has, xc, yp), true},    // ∋ (x.c has set-of-set type)
	}
	var b strings.Builder
	b.WriteString("Table 1 — Rewriting Set Comparison Operations\n")
	b.WriteString("(each quantifier expression is derived mechanically by the rewrite engine)\n\n")
	for _, r := range rows {
		got := expandTable1(r.template, r.setOfSet)
		fmt.Fprintf(&b, "  %-12s ≡  %s\n", r.template.String(), got.String())
	}
	b.WriteString("\nNegating the operator negates the quantifier expression; antijoins are\nused instead of semijoins and vice versa (§5.2.1).\n")
	return b.String(), nil
}

// Table2 regenerates the paper's Table 2: further predicates rewritable
// into (negated) existential quantification.
func Table2() (string, error) {
	xc := adl.Dot(adl.V("x"), "c")
	yp := adl.T("Y'")
	rows := []struct {
		template adl.Expr
		setOfSet bool
	}{
		{adl.EqE(yp, adl.SetOf()), false},
		{adl.EqE(adl.AggE(adl.Count, yp), adl.CInt(0)), false},
		{adl.EqE(&adl.SetOp{Op: adl.Intersect, L: xc, R: yp}, adl.SetOf()), false},
		{adl.All("z", xc, adl.CmpE(adl.SupEq, adl.V("z"), yp)), true},
	}
	var b strings.Builder
	b.WriteString("Table 2 — Rewriting Predicates\n")
	b.WriteString("(derived mechanically by the rewrite engine)\n\n")
	for _, r := range rows {
		got := expandFully(r.template, r.setOfSet)
		fmt.Fprintf(&b, "  %-24s ≡  %s\n", r.template.String(), got.String())
	}
	return b.String(), nil
}

// Table3 regenerates the paper's Table 3: the static value of P(x, ∅) per
// set comparison operator, computed by the ReduceWithEmpty analysis.
func Table3() (string, error) {
	xc := adl.Dot(adl.V("x"), "c")
	sub := adl.Sel("y", adl.CBool(true), adl.T("Y'"))
	rows := []adl.CmpOp{adl.Sub, adl.SubEq, adl.Eq, adl.SupEq, adl.Sup, adl.Has}
	var b strings.Builder
	b.WriteString("Table 3 — Set Comparison Operators And Bugs\n")
	b.WriteString("(P(x, ∅) computed by the static reduction; '?' = run-time dependent)\n\n")
	fmt.Fprintf(&b, "  %-12s %s\n", "P(x, Y')", "P(x, ∅)")
	for _, op := range rows {
		p := adl.CmpE(op, xc, sub)
		tv := rewrite.ReduceWithEmpty(p, sub)
		fmt.Fprintf(&b, "  x.c %-8s %s\n", op.String()+" Y'", tv)
	}
	b.WriteString("\nUnnesting by grouping is guaranteed correct only if P(x, ∅) reduces\nstatically to false (§5.2.2); the guard in rewrite.UnnestByGrouping\nenforces exactly this table.\n")
	return b.String(), nil
}

// renderSet prints a set one element per line, sorted canonically.
func renderSet(name string, s *value.Set) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %s =\n", name)
	for _, el := range s.Sorted() {
		fmt.Fprintf(&b, "    %s\n", el)
	}
	if s.Len() == 0 {
		b.WriteString("    (empty)\n")
	}
	return b.String()
}

// figureQuery is the Figure 1/2 nested query σ[x : x.c ⊆ σ[y : x.a = y.d](Y)](X).
func figureQuery() adl.Expr {
	sub := adl.Sel("y", adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d")), adl.T("Y"))
	return adl.Sel("x", adl.CmpE(adl.SubEq, adl.Dot(adl.V("x"), "c"), sub), adl.T("X"))
}

func figureCtxTypes() *rewrite.Context {
	de := types.NewTuple("d", types.IntType, "e", types.IntType)
	return rewrite.NewStaticContext(map[string]*types.Tuple{
		"X": types.NewTuple("a", types.IntType, "c", types.NewSet(de)),
		"Y": de,
	})
}

// Figure1 regenerates Figure 1: the nested query involving a set-valued
// attribute, with its example tables and nested-loop result.
func Figure1() (string, error) {
	db := bench.Figure2DB()
	q := figureQuery()
	res, err := eval.EvalSet(q, nil, db)
	if err != nil {
		return "", err
	}
	x, _ := db.Table("X")
	y, _ := db.Table("Y")
	var b strings.Builder
	b.WriteString("Figure 1 — Nesting Involving Set-Valued Attribute\n\n")
	fmt.Fprintf(&b, "  query: %s\n\n", q)
	b.WriteString(renderSet("X", x))
	b.WriteString(renderSet("Y", y))
	b.WriteString(renderSet("result (nested-loop semantics)", res))
	return b.String(), nil
}

// Figure2 regenerates Figure 2: the Complex Object bug. The intermediate
// join, nest and select/project results of the [GaWo87] plan are shown, and
// the dangling tuple the join loses is identified.
func Figure2() (string, error) {
	db := bench.Figure2DB()
	q := figureQuery()
	ctx := figureCtxTypes()

	correct, err := eval.EvalSet(q, nil, db)
	if err != nil {
		return "", err
	}
	buggy, ok := rewrite.UnnestByGrouping(q, ctx, true)
	if !ok {
		return "", fmt.Errorf("grouping rewrite did not apply")
	}
	buggyRes, err := eval.EvalSet(buggy, nil, db)
	if err != nil {
		return "", err
	}

	// Intermediate results of the flat join query.
	join := adl.JoinE(adl.T("X"), "x", "y",
		adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d")), adl.T("Y"))
	joinRes, err := eval.EvalSet(join, nil, db)
	if err != nil {
		return "", err
	}
	nest := adl.Nu(join, "ys", "d", "e")
	nestRes, err := eval.EvalSet(nest, nil, db)
	if err != nil {
		return "", err
	}

	x, _ := db.Table("X")
	y, _ := db.Table("Y")
	var b strings.Builder
	b.WriteString("Figure 2 — The Complex Object Bug\n\n")
	fmt.Fprintf(&b, "  nested query:   %s\n", q)
	fmt.Fprintf(&b, "  [GaWo87] plan:  %s\n\n", buggy)
	b.WriteString(renderSet("X", x))
	b.WriteString(renderSet("Y", y))
	b.WriteString(renderSet("join X ⋈(x.a = y.d) Y", joinRes))
	b.WriteString(renderSet("nest ν[{d,e}→ys](join)", nestRes))
	b.WriteString(renderSet("project/select (buggy result)", buggyRes))
	b.WriteString(renderSet("correct result (nested-loop)", correct))
	lost := correct.Diff(buggyRes)
	b.WriteString(renderSet("LOST dangling tuples", lost))
	b.WriteString("\nThe tuple ⟨a=2, c=∅⟩ is not matched by any y ∈ Y, so the subquery result\nis empty; ∅ ⊆ ∅ is true and the tuple belongs in the result, but the join\nloses it — the Complex Object bug. The Table 3 guard refuses this plan:\n")
	sub := adl.Sel("y", adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d")), adl.T("Y"))
	tv := rewrite.ReduceWithEmpty(adl.CmpE(adl.SubEq, adl.Dot(adl.V("x"), "c"), sub), sub)
	fmt.Fprintf(&b, "  P(x, ∅) = x.c ⊆ ∅ reduces to %q (not false), so grouping is rejected.\n", tv.String())

	res := rewrite.Optimize(q, ctx)
	fmt.Fprintf(&b, "\nThe nestjoin strategy (§6.1) avoids the bug:\n  %s\n", res.Expr)
	njRes, err := eval.EvalSet(res.Expr, nil, db)
	if err != nil {
		return "", err
	}
	if !value.Equal(njRes, correct) {
		return "", fmt.Errorf("nestjoin plan diverges from ground truth")
	}
	b.WriteString("  (verified equal to the nested-loop result)\n")

	// The [GaWo87] outer-join repair the paper sketches in §5.2.2.
	repaired, ok := rewrite.UnnestByGroupingOuter(q, ctx)
	if !ok {
		return "", fmt.Errorf("outer repair did not apply")
	}
	fmt.Fprintf(&b, "\nThe [GaWo87] outerjoin repair (nulls represent the empty set) also works:\n  %s\n", repaired)
	repRes, err := eval.EvalSet(repaired, nil, db)
	if err != nil {
		return "", err
	}
	if !value.Equal(repRes, correct) {
		return "", fmt.Errorf("outer repair diverges from ground truth")
	}
	b.WriteString("  (verified equal to the nested-loop result)\n")
	return b.String(), nil
}

// Figure3 regenerates Figure 3: the nestjoin example.
func Figure3() (string, error) {
	db := bench.Figure3DB()
	q := adl.NestJoin(adl.T("X"), "x", "y",
		adl.EqE(adl.Dot(adl.V("x"), "b"), adl.Dot(adl.V("y"), "d")), "ys", adl.T("Y"))
	res, err := eval.EvalSet(q, nil, db)
	if err != nil {
		return "", err
	}
	x, _ := db.Table("X")
	y, _ := db.Table("Y")
	var b strings.Builder
	b.WriteString("Figure 3 — Nestjoin Example\n\n")
	fmt.Fprintf(&b, "  query: %s\n\n", q)
	b.WriteString(renderSet("X", x))
	b.WriteString(renderSet("Y", y))
	b.WriteString(renderSet("X ⊣(x.b = y.d ; ys) Y", res))
	b.WriteString("\nEach left operand tuple is concatenated with the set of matching right\noperand tuples; dangling tuples (a=3) keep the empty set instead of being\nlost (Definition 1, §6.1).\n")
	return b.String(), nil
}

// traceArtifact runs the relational rules on a query and renders the paper-
// style derivation chain.
func traceArtifact(title string, q adl.Expr, ctx *rewrite.Context) (string, error) {
	rules := append(rewrite.NormalizeRules(), rewrite.ExpandRules()...)
	rules = append(rules, rewrite.QuantRules()...)
	rules = append(rules, rewrite.NegationRules()...)
	rules = append(rules, rewrite.JoinRules()...)
	en := rewrite.NewEngine(rules)
	out := en.Run(q, ctx)
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", title)
	fmt.Fprintf(&b, "     %s\n", q)
	for _, s := range en.Trace {
		fmt.Fprintf(&b, "  ≡  %s    [%s]\n", s.After, s.Rule)
	}
	fmt.Fprintf(&b, "\n  final: %s\n", out)
	return b.String(), nil
}

// RewritingExample1 regenerates §5.2.1 Rewriting Example 1 (SET MEMBERSHIP).
func RewritingExample1() (string, error) {
	// σ[x : x.a ∈ α[y : y.d](σ[y : q](Y))](X) with q ≡ y.e ≥ x.a.
	q := adl.CmpE(adl.Ge, adl.Dot(adl.V("y"), "e"), adl.Dot(adl.V("x"), "a"))
	e := adl.Sel("x",
		adl.CmpE(adl.In, adl.Dot(adl.V("x"), "a"),
			adl.MapE("y", adl.Dot(adl.V("y"), "d"), adl.Sel("y", q, adl.T("Y")))),
		adl.T("X"))
	return traceArtifact("Rewriting Example 1 — SET MEMBERSHIP (x.c ∈ Y′ ⇒ semijoin)", e, figureCtxTypes())
}

// RewritingExample2 regenerates Rewriting Example 2 (SET INCLUSION).
func RewritingExample2() (string, error) {
	q := adl.EqE(adl.Dot(adl.V("y"), "d"), adl.Dot(adl.V("x"), "a"))
	e := adl.Sel("x",
		adl.CmpE(adl.SubEq, adl.Sel("y", q, adl.T("Y")), adl.Dot(adl.V("x"), "c")),
		adl.T("X"))
	return traceArtifact("Rewriting Example 2 — SET INCLUSION (Y′ ⊆ x.c ⇒ antijoin)", e, figureCtxTypes())
}

// RewritingExample3 regenerates Rewriting Example 3 (EXCHANGING QUANTIFIERS).
func RewritingExample3() (string, error) {
	ctx := rewrite.NewStaticContext(map[string]*types.Tuple{
		"X": types.NewTuple("a", types.IntType, "c", types.NewSet(types.NewSet(types.IntType))),
		"Y": types.NewTuple("d", types.IntType),
	})
	q := adl.CmpE(adl.Le, adl.Dot(adl.V("y"), "d"), adl.CInt(2))
	sub := adl.MapE("y", adl.Dot(adl.V("y"), "d"), adl.Sel("y", q, adl.T("Y")))
	e := adl.Sel("x",
		adl.All("z", adl.Dot(adl.V("x"), "c"), adl.CmpE(adl.SupEq, adl.V("z"), sub)),
		adl.T("X"))
	return traceArtifact("Rewriting Example 3 — EXCHANGING QUANTIFIERS (∀z∈x.c • z ⊇ Y′ ⇒ antijoin)", e, ctx)
}

// paperQueries are the OOSQL sources of Example Queries 1–6 (§2, §4). EQ3's
// first query is reproduced with an explicit flatten: the verbatim form
// compares a set of parts with a set of sets of parts and is rejected by the
// typechecker (the paper is informal here).
func paperQueries() []struct{ Name, Src, Comment string } {
	return []struct{ Name, Src, Comment string }{
		{"EQ1", `select (sname = s.sname,
        pnames = select p.pname from p in s.parts_supplied where p.color = "red")
 from s in SUPPLIER`,
			"nesting in the select-clause over a set-valued attribute: stays nested-loop (no base table inside the iterator, §3)"},
		{"EQ2", `select d
 from d in (select e from e in DELIVERY where e.supplier.sname = "supplier-1")
 where d.date = 940101`,
			"nesting in the from-clause: removed by composing selections"},
		{"EQ3a", `select s.sname from s in SUPPLIER
 where s.parts_supplied superset
       flatten(select t.parts_supplied from t in SUPPLIER where t.sname = "supplier-1")`,
			"set comparison between blocks (⊇ row of Table 1 ⇒ quantifiers ⇒ join)"},
		{"EQ3b", `select d from d in DELIVERY
 where exists x in (select s from s in d.supply where s.part.color = "red")`,
			"quantifier over a subquery on a set-valued attribute: stays nested-loop"},
		{"EQ4", `select s.eid from s in SUPPLIER
 where exists z in s.parts_supplied : not exists p in PART : z = p`,
			"attribute-unnest option: μ exposes the ¬∃, Rule 1 gives the antijoin"},
		{"EQ5", `select s from s in SUPPLIER
 where exists x in s.parts_supplied : exists p in PART : x = p and p.color = "red"`,
			"quantifier exchange + Rule 1: the paper's semijoin"},
		{"EQ6", `select (sname = s.sname,
        parts_suppl = select p from p in PART where p in s.parts_supplied)
 from s in SUPPLIER`,
			"select-clause nesting over a base table: the nestjoin"},
	}
}

// ExampleQueries regenerates Example Queries 1–6 end to end: parse,
// translate, optimize (with option report), plan, and run on a small
// generated database.
func ExampleQueries() (string, error) {
	st := bench.Generate(bench.Config{Suppliers: 6, Parts: 8, Fanout: 3,
		Deliveries: 4, DanglingFrac: 0.3, Seed: 94})
	var b strings.Builder
	b.WriteString("Example Queries 1–6 (§2, §4) — full pipeline\n")
	b.WriteString(strings.Repeat("=", 72) + "\n")
	for _, pq := range paperQueries() {
		fmt.Fprintf(&b, "\n%s — %s\n", pq.Name, pq.Comment)
		fmt.Fprintf(&b, "  OOSQL:     %s\n", strings.Join(strings.Fields(pq.Src), " "))
		e, _, err := translate.Parse(pq.Src, st.Catalog())
		if err != nil {
			return "", fmt.Errorf("%s: %w", pq.Name, err)
		}
		fmt.Fprintf(&b, "  ADL:       %s\n", e)
		res := rewrite.Optimize(e, rewrite.NewContext(st.Catalog()))
		fmt.Fprintf(&b, "  optimized: %s\n", res.Expr)
		opts := "none (nested-loop)"
		if len(res.OptionsUsed) > 0 {
			opts = strings.Join(res.OptionsUsed, ", ")
		}
		fmt.Fprintf(&b, "  options:   %s; nested base tables %d → %d\n",
			opts, res.NestedBefore, res.NestedAfter)

		// EQ1/EQ3b navigate references; the fixture's dangling refs would
		// fail them, so run those on the dangling-free variant.
		runStore := st
		if pq.Name == "EQ1" || pq.Name == "EQ3b" {
			runStore = bench.Generate(bench.Config{Suppliers: 6, Parts: 8, Fanout: 3,
				Deliveries: 4, Seed: 94})
		}
		want, err := eval.EvalSet(e, nil, runStore)
		if err != nil {
			return "", fmt.Errorf("%s eval: %w", pq.Name, err)
		}
		got, err := plan.Run(res.Expr, runStore)
		if err != nil {
			return "", fmt.Errorf("%s plan: %w", pq.Name, err)
		}
		if !value.Equal(want, got) {
			return "", fmt.Errorf("%s: physical result diverges", pq.Name)
		}
		fmt.Fprintf(&b, "  result:    %d tuples (physical plan ≡ nested-loop reference)\n", got.Len())
	}

	// The verbatim EQ3 is ill-typed; show the diagnostic.
	b.WriteString("\nEQ3 (verbatim) — the paper compares {(pid)} with {{(pid)}}:\n")
	_, _, err := translate.Parse(`select s.sname from s in SUPPLIER
		where s.parts_supplied superset
		(select t.parts_supplied from t in SUPPLIER where t.sname = "supplier-1")`, st.Catalog())
	if err == nil {
		return "", fmt.Errorf("verbatim EQ3 unexpectedly typechecked")
	}
	fmt.Fprintf(&b, "  typechecker: %v\n", err)
	return b.String(), nil
}

// SchemaArtifact prints the §2 schema and its §4 ADL types, derived from the
// catalog.
func SchemaArtifact() (string, error) {
	cat := schema.SupplierPart()
	var b strings.Builder
	b.WriteString("§2 schema and its §3/§4 logical design\n\n")
	b.WriteString(cat.String())
	b.WriteString("\nADL table types (class references erased to oid):\n")
	names := cat.Extents()
	sort.Strings(names)
	for _, ext := range names {
		tt, err := cat.ExtentType(ext)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "  %s : %s\n", ext, tt)
	}
	return b.String(), nil
}
