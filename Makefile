GO ?= go

.PHONY: build test race bench bench-smoke fmt fmt-check vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark suite (also available as paper-style tables: go run ./cmd/adlbench).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# One iteration of every benchmark — CI's "does it still run" check.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Exactly what .github/workflows/ci.yml runs.
ci: fmt-check vet build race bench-smoke
