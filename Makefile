GO ?= go

.PHONY: build test race bench bench-json bench-smoke fmt fmt-check vet staticcheck ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark suite (also available as paper-style tables: go run ./cmd/adlbench).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# One iteration of every benchmark, plus the index-aware and histogram
# experiments with their built-in correctness and plan-choice assertions —
# CI's "does it still run" check, which keeps the index operator family and
# the histogram estimator exercised end to end.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .
	$(GO) run ./cmd/adlbench -quick -exp B11 -indexes
	$(GO) run ./cmd/adlbench -quick -exp B12

# Benchmark iteration budget for the JSON artifact. 1x keeps CI fast; bump
# locally (make bench-json BENCHTIME=5s) for stable numbers.
BENCHTIME ?= 1x

# Runs the benchmark suite and archives the measurements as a JSON
# perf-trajectory file (cmd/benchjson). CI uploads BENCH_RESULTS.json as an
# artifact per commit so regressions show up as a number series. A temp file
# rather than a pipe: a pipeline's exit status would be benchjson's, letting
# a failing benchmark upload a partial trajectory as green.
bench-json:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -run='^$$' . > bench-raw.txt
	$(GO) run ./cmd/benchjson -out BENCH_RESULTS.json < bench-raw.txt
	@rm -f bench-raw.txt

# Total-statement-coverage floor enforced by make cover. 80.3% was measured
# when the gate was introduced; the floor sits just under it to absorb the
# scheduling jitter of the parallel operators' branch coverage. Raise it as
# coverage grows, never lower it.
COVER_FLOOR ?= 80.0

# Per-package coverage plus a total floor: prints every package's percentage
# and fails when the total drops below COVER_FLOOR.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | tail -n 1 | awk '{print $$3}' | tr -d '%'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' \
		|| { echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# A short go test -fuzz run of the OOSQL parser fuzz target — CI's "the
# fuzzer still runs and finds nothing in ten seconds" check.
fuzz-smoke:
	$(GO) test ./internal/oosql -run '^$$' -fuzz FuzzParse -fuzztime 10s

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Pinned so CI runs reproduce locally. Upgrade deliberately, not implicitly.
STATICCHECK_VERSION ?= 2025.1.1

# Uses a staticcheck binary from PATH when present (offline-friendly);
# otherwise fetches the pinned version via go run (what CI does).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	fi

# Exactly what .github/workflows/ci.yml runs. staticcheck is separate from
# `ci` so the aggregate target stays runnable offline; CI runs both.
ci: fmt-check vet build race cover fuzz-smoke bench-smoke
