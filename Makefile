GO ?= go

.PHONY: build test race bench bench-json bench-vec bench-smoke serve-smoke bench-serve examples-smoke cover fuzz-smoke fmt fmt-check vet staticcheck lint ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark suite (also available as paper-style tables: go run ./cmd/adlbench).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# One iteration of every benchmark, plus the index-aware and histogram
# experiments with their built-in correctness and plan-choice assertions —
# CI's "does it still run" check, which keeps the index operator family and
# the histogram estimator exercised end to end.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .
	$(GO) run ./cmd/adlbench -quick -exp B11 -indexes
	$(GO) run ./cmd/adlbench -quick -exp B12

# Benchmark iteration budget for the JSON artifact. 1x keeps CI fast; bump
# locally (make bench-json BENCHTIME=5s) for stable numbers.
BENCHTIME ?= 1x

# Output file for bench-json. CI's regression job writes a fresh run to a
# scratch path (BENCH_OUT=fresh.json) and compares it against the committed
# BENCH_RESULTS.json with `benchjson -compare`.
BENCH_OUT ?= BENCH_RESULTS.json

# Runs the benchmark suite and archives the measurements as a JSON
# perf-trajectory file (cmd/benchjson). CI uploads BENCH_RESULTS.json as an
# artifact per commit so regressions show up as a number series. A temp file
# rather than a pipe: a pipeline's exit status would be benchjson's, letting
# a failing benchmark upload a partial trajectory as green.
bench-json:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -run='^$$' . > bench-raw.txt
	$(GO) run ./cmd/benchjson -out $(BENCH_OUT) < bench-raw.txt
	@rm -f bench-raw.txt

# Allocation budget for the vectorized arms: each vectorized benchmark must
# allocate at most this percent of its scalar twin's allocs/op.
VEC_ALLOC_PCT ?= 5

# Scalar-vs-batch benchmark pairs (B1's execution-only arms, the B13
# pipeline, and B14's four-way parallel-vectorized arms), gated on the
# allocation budget at the full S400 scale and folded into the committed
# perf trajectory. The gate runs before the merge so a failing run never
# pollutes $(BENCH_OUT). Smoke scales are measured and archived but not
# gated: their scalar arms are small enough that the vectorized pipeline's
# fixed result-materialization floor dominates the ratio.
bench-vec:
	$(GO) test -bench='BenchmarkB1/(scalar|vectorized)_exec|BenchmarkB13/|BenchmarkB14/' \
		-benchmem -benchtime=$(BENCHTIME) -run='^$$' . > bench-vec-raw.txt
	$(GO) run ./cmd/benchjson -out bench-vec.json < bench-vec-raw.txt
	$(GO) run ./cmd/benchjson -alloc-gate $(VEC_ALLOC_PCT) -match S400 bench-vec.json
	$(GO) run ./cmd/benchjson -merge bench-vec.json -out $(BENCH_OUT)
	@rm -f bench-vec-raw.txt bench-vec.json

# Serving-layer smoke: boots the OOSQL server binary and drives it over HTTP
# with the closed-loop load generator, then repeats the workload in-process
# under the race detector with 256 clients on a small dataset (the
# differential verification arm re-executes the untransformed nested form —
# the paper's quadratic baseline — so the extent must stay small to bound
# -race runtime). The driver exits non-zero on any request error or any
# non-linearizable verified read, which fails this target.
SERVE_ADDR ?= 127.0.0.1:18094
serve-smoke:
	$(GO) build -o adlserve.smoke ./cmd/adlserve
	@./adlserve.smoke -addr $(SERVE_ADDR) -suppliers 100 -parts 200 -deliveries 50 & \
	srv=$$!; trap 'kill $$srv 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		curl -sf http://$(SERVE_ADDR)/healthz >/dev/null 2>&1 && break; sleep 0.2; done; \
	$(GO) run ./cmd/adlload -addr http://$(SERVE_ADDR) -clients 64 -duration 2s \
		-insert-frac 0.2 -delete-frac 0.05 -update-frac 0.05 -verify-frac 0.05 || exit 1
	@rm -f adlserve.smoke
	$(GO) run -race ./cmd/adlload -clients 256 -duration 2s -insert-frac 0.2 \
		-delete-frac 0.05 -update-frac 0.05 \
		-verify-frac 0.05 -suppliers 100 -parts 200 -deliveries 50

# Closed-loop serving benchmark: 1000 concurrent clients, plan cache on vs
# off, asserting identical results per query and a p50 win for the cached
# arm, then folds the measurements into the committed perf trajectory.
bench-serve:
	$(GO) run ./cmd/adlload -clients 1000 -duration 3s -compare-cache -assert \
		-json serve-results.json
	$(GO) run ./cmd/benchjson -merge serve-results.json -out BENCH_RESULTS.json
	@rm -f serve-results.json

# Total-statement-coverage floor enforced by make cover. 81.8% was measured
# after the serving-layer phase-2 test sweep; the floor sits just under it to
# absorb the scheduling jitter of the parallel operators' branch coverage.
# Raise it as coverage grows, never lower it.
COVER_FLOOR ?= 81.0

# Per-package coverage plus a total floor: prints every package's percentage
# and fails when the total drops below COVER_FLOOR.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	@total=$$($(GO) tool cover -func=coverage.out | tail -n 1 | awk '{print $$3}' | tr -d '%'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' \
		|| { echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# Builds and runs every example program. The examples double as end-to-end
# documentation of the public pipeline (parse → rewrite → plan → execute), so
# CI runs them rather than just compiling them: a demo that builds but
# crashes — or one whose built-in assertions fail — fails this target.
examples-smoke:
	@set -e; for d in examples/*/; do \
		echo "== $$d"; $(GO) run ./$$d > /dev/null; done

# A short go test -fuzz run of the OOSQL parser fuzz target — CI's "the
# fuzzer still runs and finds nothing in ten seconds" check.
fuzz-smoke:
	$(GO) test ./internal/oosql -run '^$$' -fuzz FuzzParse -fuzztime 10s

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Pinned so CI runs reproduce locally. Upgrade deliberately, not implicitly.
STATICCHECK_VERSION ?= 2025.1.1

# Uses a staticcheck binary from PATH when present (offline-friendly);
# otherwise fetches the pinned version via go run (what CI does).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	fi

# The project's custom analyzer suite (clonesafety, snapshotdiscipline,
# atomicmeter, closepropagate, batchimmutable — see `adllint -list`). Fully
# offline: the driver is in-tree and loads packages via `go list -export`.
# Prefers an installed adllint binary, falls back to go run like staticcheck.
lint: vet
	@if command -v adllint >/dev/null 2>&1; then \
		adllint ./...; \
	else \
		$(GO) run ./cmd/adllint ./...; \
	fi

# Exactly what .github/workflows/ci.yml runs. staticcheck is separate from
# `ci` so the aggregate target stays runnable offline; CI runs both.
ci: fmt-check lint build race cover fuzz-smoke bench-smoke examples-smoke serve-smoke
