// Zero module requirements, deliberately: the reference build environment is
// fully offline (no module proxy), so everything — including the adllint
// static-analysis suite in internal/lint — runs on the standard library.
// adllint is shaped after golang.org/x/tools/go/analysis but uses an in-tree
// shim instead of pinning x/tools here; the external tools CI runs are pinned
// where they are invoked (STATICCHECK_VERSION in the Makefile, the
// govulncheck version in .github/workflows/ci.yml).
module repro

go 1.22
