// Command adlload is the closed-loop load driver for the serving layer: N
// concurrent clients each issue a mixed stream of OOSQL reads and PART
// inserts as fast as the engine answers, for a fixed duration. It reports
// p50/p99 latency and sustained QPS, and writes them as a benchjson fragment
// (-json) for merging into BENCH_RESULTS.json.
//
// By default the driver runs in-process: it builds the store, wraps it in
// the serving engine, and drives it directly — this is the mode CI runs
// under -race, and the mode that can differentially verify reads. A
// fraction of reads (-verify-frac) re-execute the untransformed nested form
// serially against the same pinned snapshot and fail the run on any
// mismatch — the reads-under-writes linearizability arm: under concurrent
// inserts, a pinned snapshot must answer exactly as it would have with the
// world stopped.
//
// With -addr the driver targets a running adlserve over HTTP instead.
//
// With -compare-cache the workload runs twice on identical fresh stores —
// plan cache on, then off — after first asserting both engines return
// identical results for every query in the pool; -assert additionally fails
// the run unless the cached arm wins on p50.
//
//	adlload -clients 1000 -duration 5s -insert-frac 0.2 -verify-frac 0.02
//	adlload -compare-cache -assert -json serve.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/value"
)

// queryPool is the read mix: equality and range selections an index can
// serve, a full scan, and two of the paper's join-shaped example queries
// (the §4 semijoin and select-clause nesting) so the cache holds plans the
// optimizer actually had to think about.
var queryPool = []struct{ name, src string }{
	{"red-parts", `select p.pname from p in PART where p.color = "red"`},
	{"cheap-parts", `select p.pname from p in PART where p.price < 10`},
	{"all-suppliers", `select s.sname from s in SUPPLIER`},
	{"semijoin", `select s from s in SUPPLIER
 where exists x in s.parts_supplied : exists p in PART : x = p and p.color = "red"`},
	{"nested-select", `select (sname = s.sname,
        pnames = select p.pname from p in s.parts_supplied where p.color = "red")
 from s in SUPPLIER`},
}

var partColors = []string{"red", "green", "blue"}

type config struct {
	clients    int
	duration   time.Duration
	insertFrac float64
	verifyFrac float64
	seed       int64
}

// client issues one operation against either the in-process engine or a
// remote adlserve.
type client interface {
	query(src string, verify bool) error
	insert(t *value.Tuple) error
}

type localClient struct{ eng *server.Engine }

func (c localClient) query(src string, verify bool) error {
	var err error
	if verify {
		_, err = c.eng.QueryVerified(src)
	} else {
		_, err = c.eng.Query(src)
	}
	return err
}

func (c localClient) insert(t *value.Tuple) error {
	_, err := c.eng.Insert("PART", t)
	return err
}

type httpClient struct {
	base string
	hc   *http.Client
}

func (c httpClient) post(path string, body any) error {
	blob, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", path, resp.Status, msg)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

func (c httpClient) query(src string, verify bool) error {
	return c.post("/query", map[string]any{"query": src, "verify": verify})
}

func (c httpClient) insert(t *value.Tuple) error {
	enc, err := value.EncodeJSON(t)
	if err != nil {
		return err
	}
	return c.post("/insert", map[string]any{"extent": "PART", "object": json.RawMessage(enc)})
}

func newPart(rng *rand.Rand, id int64) *value.Tuple {
	return value.NewTuple(
		"pname", value.String(fmt.Sprintf("load-part-%d", id)),
		"price", value.Int(rng.Int63n(100)+1),
		"color", value.String(partColors[rng.Intn(len(partColors))]),
	)
}

// runResult aggregates one closed-loop run.
type runResult struct {
	ops, reads, writes, verified int
	p50, p99                     time.Duration
	qps                          float64
	elapsed                      time.Duration
	errs                         []error
}

// run drives cfg.clients concurrent closed loops against mk's client for
// cfg.duration.
func run(cfg config, mk func() client) runResult {
	var wg sync.WaitGroup
	lats := make([][]time.Duration, cfg.clients)
	errs := make([][]error, cfg.clients)
	counts := make([][3]int, cfg.clients) // reads, writes, verified
	deadline := time.Now().Add(cfg.duration)
	start := time.Now()
	for i := 0; i < cfg.clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := mk()
			rng := rand.New(rand.NewSource(cfg.seed + int64(i)))
			for n := 0; time.Now().Before(deadline); n++ {
				t0 := time.Now()
				var err error
				if rng.Float64() < cfg.insertFrac {
					err = cl.insert(newPart(rng, int64(i)<<32|int64(n)))
					counts[i][1]++
				} else {
					q := queryPool[rng.Intn(len(queryPool))]
					verify := rng.Float64() < cfg.verifyFrac
					err = cl.query(q.src, verify)
					counts[i][0]++
					if verify {
						counts[i][2]++
					}
				}
				lats[i] = append(lats[i], time.Since(t0))
				if err != nil {
					errs[i] = append(errs[i], err)
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var res runResult
	res.elapsed = elapsed
	var all []time.Duration
	for i := range lats {
		all = append(all, lats[i]...)
		res.errs = append(res.errs, errs[i]...)
		res.reads += counts[i][0]
		res.writes += counts[i][1]
		res.verified += counts[i][2]
	}
	res.ops = len(all)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		res.p50 = all[len(all)/2]
		res.p99 = all[len(all)*99/100]
		res.qps = float64(len(all)) / elapsed.Seconds()
	}
	return res
}

func (r runResult) report(label string, cfg config) {
	fmt.Printf("%-12s %d clients, %v: %d ops (%d reads, %d writes, %d verified) — p50 %v, p99 %v, %.0f ops/s, %d errors\n",
		label, cfg.clients, r.elapsed.Round(time.Millisecond), r.ops, r.reads, r.writes, r.verified,
		r.p50.Round(time.Microsecond), r.p99.Round(time.Microsecond), r.qps, len(r.errs))
	for i, err := range r.errs {
		if i >= 5 {
			fmt.Printf("  ... %d more errors\n", len(r.errs)-5)
			break
		}
		fmt.Printf("  error: %v\n", err)
	}
}

// benchResult / benchFile mirror cmd/benchjson's artifact shape so the
// fragment this driver writes merges cleanly into BENCH_RESULTS.json.
type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type benchFile struct {
	Results []benchResult `json:"results"`
}

func (r runResult) bench(name string, cfg config) benchResult {
	return benchResult{
		Name:       name,
		Iterations: int64(r.ops),
		NsPerOp:    float64(r.p50.Nanoseconds()),
		Metrics: map[string]float64{
			"clients":  float64(cfg.clients),
			"p50_ns":   float64(r.p50.Nanoseconds()),
			"p99_ns":   float64(r.p99.Nanoseconds()),
			"qps":      r.qps,
			"reads":    float64(r.reads),
			"writes":   float64(r.writes),
			"verified": float64(r.verified),
			"errors":   float64(len(r.errs)),
		},
	}
}

func buildEngine(suppliers, parts, deliveries int, seed int64, noCache bool) *server.Engine {
	st := bench.Generate(bench.Config{Suppliers: suppliers, Parts: parts, Deliveries: deliveries, Seed: seed})
	if err := st.CreateIndex("PART", "color", storage.HashIndex); err != nil {
		fatal(err)
	}
	if err := st.CreateIndex("PART", "price", storage.OrderedIndex); err != nil {
		fatal(err)
	}
	st.Analyze()
	return server.New(st, server.Options{NoPlanCache: noCache, Parallelism: 1})
}

// assertEqualResults proves the two engines (plan cache on/off) answer every
// pool query identically over identical stores, before any insert diverges
// them — the "equal results" leg of the plan-cache claim.
func assertEqualResults(a, b *server.Engine) {
	for _, q := range queryPool {
		ra, err := a.QueryVerified(q.src)
		if err != nil {
			fatal(fmt.Errorf("compare %s (cached engine): %w", q.name, err))
		}
		rb, err := b.QueryVerified(q.src)
		if err != nil {
			fatal(fmt.Errorf("compare %s (uncached engine): %w", q.name, err))
		}
		if ra.Set.Len() != rb.Set.Len() || !ra.Set.SubsetOf(rb.Set) {
			fatal(fmt.Errorf("compare %s: cached engine returned %d rows, uncached %d",
				q.name, ra.Set.Len(), rb.Set.Len()))
		}
	}
	fmt.Printf("result equivalence: %d pool queries identical across cached/uncached engines (differentially verified)\n",
		len(queryPool))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "adlload: %v\n", err)
	os.Exit(1)
}

func main() {
	var (
		clients      = flag.Int("clients", 1000, "concurrent closed-loop clients")
		duration     = flag.Duration("duration", 5*time.Second, "run duration")
		insertFrac   = flag.Float64("insert-frac", 0.2, "fraction of operations that insert a PART")
		verifyFrac   = flag.Float64("verify-frac", 0.02, "fraction of reads differentially verified against a serial re-execution")
		addr         = flag.String("addr", "", "drive a running adlserve at this base URL (e.g. http://localhost:8080) instead of in-process")
		suppliers    = flag.Int("suppliers", 400, "generated SUPPLIER rows (in-process)")
		parts        = flag.Int("parts", 800, "generated PART rows (in-process)")
		deliveries   = flag.Int("deliveries", 200, "generated DELIVERY rows (in-process)")
		seed         = flag.Int64("seed", 94, "workload seed")
		noCache      = flag.Bool("no-plan-cache", false, "disable the plan cache (in-process)")
		compareCache = flag.Bool("compare-cache", false, "run the workload twice, plan cache on and off, and compare p50")
		assertWin    = flag.Bool("assert", false, "exit non-zero unless the cached arm wins p50 in -compare-cache (and on any error always)")
		jsonOut      = flag.String("json", "", "write results as a benchjson fragment to this file")
		namePrefix   = flag.String("name", "Serve", "benchmark name prefix for the JSON fragment")
	)
	flag.Parse()

	cfg := config{
		clients:    *clients,
		duration:   *duration,
		insertFrac: *insertFrac,
		verifyFrac: *verifyFrac,
		seed:       *seed,
	}
	var results []benchResult
	failed := false

	switch {
	case *addr != "":
		hc := &http.Client{Timeout: 30 * time.Second}
		res := run(cfg, func() client { return httpClient{base: *addr, hc: hc} })
		res.report("http", cfg)
		results = append(results, res.bench(*namePrefix+"/http", cfg))
		failed = len(res.errs) > 0

	case *compareCache:
		cached := buildEngine(*suppliers, *parts, *deliveries, *seed, false)
		uncached := buildEngine(*suppliers, *parts, *deliveries, *seed, true)
		assertEqualResults(cached, uncached)
		resCached := run(cfg, func() client { return localClient{eng: cached} })
		resCached.report("plancache", cfg)
		resUncached := run(cfg, func() client { return localClient{eng: uncached} })
		resUncached.report("replan", cfg)
		m := cached.Metrics()
		fmt.Printf("plan cache: %d hits, %d misses, %d epoch-drift replans\n", m.CacheHits, m.CacheMiss, m.Replans)
		speedup := float64(resUncached.p50) / float64(resCached.p50)
		fmt.Printf("p50 plancache %v vs replan %v (%.2fx)\n",
			resCached.p50.Round(time.Microsecond), resUncached.p50.Round(time.Microsecond), speedup)
		results = append(results,
			resCached.bench(*namePrefix+"/plancache", cfg),
			resUncached.bench(*namePrefix+"/replan", cfg))
		failed = len(resCached.errs) > 0 || len(resUncached.errs) > 0
		if *assertWin && resCached.p50 > resUncached.p50 {
			fmt.Fprintln(os.Stderr, "adlload: ASSERT FAILED: plan-cache arm lost on p50")
			failed = true
		}

	default:
		eng := buildEngine(*suppliers, *parts, *deliveries, *seed, *noCache)
		res := run(cfg, func() client { return localClient{eng: eng} })
		label := "plancache"
		if *noCache {
			label = "replan"
		}
		res.report(label, cfg)
		m := eng.Metrics()
		fmt.Printf("plan cache: %d hits, %d misses, %d epoch-drift replans; store at seq %d, stats epoch %d\n",
			m.CacheHits, m.CacheMiss, m.Replans, m.Seq, m.StatsEpoch)
		results = append(results, res.bench(*namePrefix+"/"+label, cfg))
		failed = len(res.errs) > 0
	}

	if *jsonOut != "" {
		blob, err := json.MarshalIndent(benchFile{Results: results}, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d results to %s\n", len(results), *jsonOut)
	}
	if failed {
		os.Exit(1)
	}
}
