// Command adlload is the closed-loop load driver for the serving layer: N
// concurrent clients each issue a mixed stream of OOSQL reads and PART
// mutations — inserts, deletes, updates — as fast as the engine answers,
// for a fixed duration. It reports p50/p99 latency and sustained QPS, and
// writes them as a benchjson fragment (-json) for merging into
// BENCH_RESULTS.json.
//
// By default the driver runs in-process: it builds the store, wraps it in
// the serving engine, and drives it directly — this is the mode CI runs
// under -race, and the mode that can differentially verify reads. A
// fraction of reads (-verify-frac) re-execute the untransformed nested form
// serially against the same pinned snapshot and fail the run on any
// mismatch — the reads-under-writes linearizability arm: under concurrent
// mutations, a pinned snapshot must answer exactly as it would have with
// the world stopped. The same fraction drives sampled read-your-writes
// verification: each client tracks the parts it inserted (delete and update
// only ever touch a client's own rows, so no cross-client dangling) and
// spot-checks that a part it just wrote is visible with exactly the
// attributes it wrote — and that a part it deleted is gone. Any mismatch is
// a divergence, reported separately and failing the run.
//
// With -addr the driver targets a running adlserve over HTTP instead.
//
// With -compare-cache the workload runs twice on identical fresh stores —
// plan cache on, then off — after first asserting both engines return
// identical results for every query in the pool; -assert additionally fails
// the run unless the cached arm wins on p50.
//
//	adlload -clients 1000 -duration 5s -insert-frac 0.2 -delete-frac 0.05 -update-frac 0.05
//	adlload -compare-cache -assert -json serve.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/value"
)

// queryPool is the read mix: equality and range selections an index can
// serve, a full scan, and two of the paper's join-shaped example queries
// (the §4 semijoin and select-clause nesting) so the cache holds plans the
// optimizer actually had to think about.
var queryPool = []struct{ name, src string }{
	{"red-parts", `select p.pname from p in PART where p.color = "red"`},
	{"cheap-parts", `select p.pname from p in PART where p.price < 10`},
	{"all-suppliers", `select s.sname from s in SUPPLIER`},
	{"semijoin", `select s from s in SUPPLIER
 where exists x in s.parts_supplied : exists p in PART : x = p and p.color = "red"`},
	{"nested-select", `select (sname = s.sname,
        pnames = select p.pname from p in s.parts_supplied where p.color = "red")
 from s in SUPPLIER`},
}

var partColors = []string{"red", "green", "blue"}

type config struct {
	clients    int
	duration   time.Duration
	insertFrac float64
	deleteFrac float64
	updateFrac float64
	verifyFrac float64
	seed       int64
}

// client issues one operation against either the in-process engine or a
// remote adlserve.
type client interface {
	query(src string, verify bool) error
	// count executes a query and returns its row count (for read-your-writes
	// verification).
	count(src string) (int, error)
	insert(t *value.Tuple) (value.OID, error)
	del(oid value.OID) error
	update(oid value.OID, t *value.Tuple) error
}

type localClient struct{ eng *server.Engine }

func (c localClient) query(src string, verify bool) error {
	var err error
	if verify {
		_, err = c.eng.QueryVerified(src)
	} else {
		_, err = c.eng.Query(src)
	}
	return err
}

func (c localClient) count(src string) (int, error) {
	res, err := c.eng.Query(src)
	if err != nil {
		return 0, err
	}
	return res.Set.Len(), nil
}

func (c localClient) insert(t *value.Tuple) (value.OID, error) {
	return c.eng.Insert("PART", t)
}

func (c localClient) del(oid value.OID) error {
	return c.eng.Delete("PART", oid)
}

func (c localClient) update(oid value.OID, t *value.Tuple) error {
	return c.eng.Update("PART", oid, t)
}

type httpClient struct {
	base string
	hc   *http.Client
}

// post sends a JSON request and decodes the JSON reply.
func (c httpClient) post(path string, body any) (map[string]any, error) {
	blob, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("%s: %s: %s", path, resp.Status, msg)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("%s: decode reply: %w", path, err)
	}
	return out, nil
}

func (c httpClient) query(src string, verify bool) error {
	_, err := c.post("/query", map[string]any{"query": src, "verify": verify})
	return err
}

func (c httpClient) count(src string) (int, error) {
	out, err := c.post("/query", map[string]any{"query": src})
	if err != nil {
		return 0, err
	}
	n, ok := out["rows"].(float64)
	if !ok {
		return 0, fmt.Errorf("/query reply lacks rows: %v", out)
	}
	return int(n), nil
}

func (c httpClient) insert(t *value.Tuple) (value.OID, error) {
	enc, err := value.EncodeJSON(t)
	if err != nil {
		return 0, err
	}
	out, err := c.post("/insert", map[string]any{"extent": "PART", "object": json.RawMessage(enc)})
	if err != nil {
		return 0, err
	}
	oid, ok := out["oid"].(float64)
	if !ok {
		return 0, fmt.Errorf("/insert reply lacks oid: %v", out)
	}
	return value.OID(oid), nil
}

func (c httpClient) del(oid value.OID) error {
	_, err := c.post("/delete", map[string]any{"extent": "PART", "oid": uint64(oid)})
	return err
}

func (c httpClient) update(oid value.OID, t *value.Tuple) error {
	enc, err := value.EncodeJSON(t)
	if err != nil {
		return err
	}
	_, err = c.post("/update", map[string]any{
		"extent": "PART", "oid": uint64(oid), "object": json.RawMessage(enc)})
	return err
}

func partTuple(name string, price int64, color string) *value.Tuple {
	return value.NewTuple(
		"pname", value.String(name),
		"price", value.Int(price),
		"color", value.String(color),
	)
}

// ownedPart is one row a client inserted itself, with the attributes it
// last wrote — the expectation read-your-writes verification checks.
type ownedPart struct {
	oid   value.OID
	name  string
	price int64
	color string
}

// opCounts tallies one client's operations.
type opCounts struct {
	reads, writes, deletes, updates, verified, selfChecks int
}

// runResult aggregates one closed-loop run.
type runResult struct {
	ops         int
	counts      opCounts
	p50, p99    time.Duration
	qps         float64
	elapsed     time.Duration
	errs        []error
	divergences []string
}

// run drives cfg.clients concurrent closed loops against mk's client for
// cfg.duration.
func run(cfg config, mk func() client) runResult {
	var wg sync.WaitGroup
	lats := make([][]time.Duration, cfg.clients)
	errs := make([][]error, cfg.clients)
	divs := make([][]string, cfg.clients)
	counts := make([]opCounts, cfg.clients)
	deadline := time.Now().Add(cfg.duration)
	start := time.Now()
	for i := 0; i < cfg.clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := mk()
			rng := rand.New(rand.NewSource(cfg.seed + int64(i)))
			var mine []ownedPart
			var graveyard []string // names of parts this client deleted
			for n := 0; time.Now().Before(deadline); n++ {
				t0 := time.Now()
				var err error
				r := rng.Float64()
				switch {
				case r < cfg.insertFrac:
					name := fmt.Sprintf("load-part-%d", int64(i)<<32|int64(n))
					price := rng.Int63n(100) + 1
					color := partColors[rng.Intn(len(partColors))]
					var oid value.OID
					if oid, err = cl.insert(partTuple(name, price, color)); err == nil {
						mine = append(mine, ownedPart{oid: oid, name: name, price: price, color: color})
					}
					counts[i].writes++
				case r < cfg.insertFrac+cfg.deleteFrac && len(mine) > 0:
					j := rng.Intn(len(mine))
					if err = cl.del(mine[j].oid); err == nil {
						graveyard = append(graveyard, mine[j].name)
						if len(graveyard) > 32 {
							graveyard = graveyard[1:]
						}
						mine[j] = mine[len(mine)-1]
						mine = mine[:len(mine)-1]
					}
					counts[i].deletes++
				case r < cfg.insertFrac+cfg.deleteFrac+cfg.updateFrac && len(mine) > 0:
					j := rng.Intn(len(mine))
					price := rng.Int63n(100) + 1
					color := partColors[rng.Intn(len(partColors))]
					if err = cl.update(mine[j].oid, partTuple(mine[j].name, price, color)); err == nil {
						mine[j].price, mine[j].color = price, color
					}
					counts[i].updates++
				default:
					q := queryPool[rng.Intn(len(queryPool))]
					verify := rng.Float64() < cfg.verifyFrac
					err = cl.query(q.src, verify)
					counts[i].reads++
					if verify {
						counts[i].verified++
					}
				}
				lats[i] = append(lats[i], time.Since(t0))
				if err != nil {
					errs[i] = append(errs[i], err)
					continue
				}
				// Sampled read-your-writes verification: this client's writes
				// are sequential and publish before returning, so a query
				// pinned now must see exactly its last write (or, for a
				// deleted part, nothing). Other clients never touch these
				// rows — names and oids are client-private.
				if rng.Float64() < cfg.verifyFrac {
					counts[i].selfChecks++
					div, verr := verifySelf(cl, rng, mine, graveyard)
					if verr != nil {
						errs[i] = append(errs[i], verr)
					} else if div != "" {
						divs[i] = append(divs[i], div)
					}
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var res runResult
	res.elapsed = elapsed
	var all []time.Duration
	for i := range lats {
		all = append(all, lats[i]...)
		res.errs = append(res.errs, errs[i]...)
		res.divergences = append(res.divergences, divs[i]...)
		res.counts.reads += counts[i].reads
		res.counts.writes += counts[i].writes
		res.counts.deletes += counts[i].deletes
		res.counts.updates += counts[i].updates
		res.counts.verified += counts[i].verified
		res.counts.selfChecks += counts[i].selfChecks
	}
	res.ops = len(all)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		res.p50 = all[len(all)/2]
		res.p99 = all[len(all)*99/100]
		res.qps = float64(len(all)) / elapsed.Seconds()
	}
	return res
}

// verifySelf spot-checks one of the client's own rows: a live part must be
// visible with exactly the attributes last written (one row — names are
// unique); a deleted part must be invisible. It returns a divergence
// description (empty when consistent) or a transport/query error.
func verifySelf(cl client, rng *rand.Rand, mine []ownedPart, dead []string) (string, error) {
	if len(mine) > 0 && (len(dead) == 0 || rng.Intn(2) == 0) {
		p := mine[rng.Intn(len(mine))]
		src := fmt.Sprintf(
			`select q.pname from q in PART where q.pname = %q and q.price = %d and q.color = %q`,
			p.name, p.price, p.color)
		n, err := cl.count(src)
		if err != nil {
			return "", err
		}
		if n != 1 {
			return fmt.Sprintf("part %s: want 1 row with price=%d color=%s, saw %d rows",
				p.name, p.price, p.color, n), nil
		}
	} else if len(dead) > 0 {
		name := dead[rng.Intn(len(dead))]
		src := fmt.Sprintf(`select q.pname from q in PART where q.pname = %q`, name)
		n, err := cl.count(src)
		if err != nil {
			return "", err
		}
		if n != 0 {
			return fmt.Sprintf("deleted part %s still visible: %d rows", name, n), nil
		}
	}
	return "", nil
}

func (r runResult) report(label string, cfg config) {
	c := r.counts
	fmt.Printf("%-12s %d clients, %v: %d ops (%d reads, %d inserts, %d deletes, %d updates, %d verified, %d self-checks) — p50 %v, p99 %v, %.0f ops/s, %d errors, %d divergences\n",
		label, cfg.clients, r.elapsed.Round(time.Millisecond), r.ops,
		c.reads, c.writes, c.deletes, c.updates, c.verified, c.selfChecks,
		r.p50.Round(time.Microsecond), r.p99.Round(time.Microsecond), r.qps,
		len(r.errs), len(r.divergences))
	for i, err := range r.errs {
		if i >= 5 {
			fmt.Printf("  ... %d more errors\n", len(r.errs)-5)
			break
		}
		fmt.Printf("  error: %v\n", err)
	}
	for i, d := range r.divergences {
		if i >= 5 {
			fmt.Printf("  ... %d more divergences\n", len(r.divergences)-5)
			break
		}
		fmt.Printf("  DIVERGENCE: %s\n", d)
	}
}

// benchResult / benchFile mirror cmd/benchjson's artifact shape so the
// fragment this driver writes merges cleanly into BENCH_RESULTS.json.
type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type benchFile struct {
	Results []benchResult `json:"results"`
}

func (r runResult) bench(name string, cfg config) benchResult {
	return benchResult{
		Name:       name,
		Iterations: int64(r.ops),
		NsPerOp:    float64(r.p50.Nanoseconds()),
		Metrics: map[string]float64{
			"clients":     float64(cfg.clients),
			"p50_ns":      float64(r.p50.Nanoseconds()),
			"p99_ns":      float64(r.p99.Nanoseconds()),
			"qps":         r.qps,
			"reads":       float64(r.counts.reads),
			"writes":      float64(r.counts.writes),
			"deletes":     float64(r.counts.deletes),
			"updates":     float64(r.counts.updates),
			"verified":    float64(r.counts.verified),
			"self_checks": float64(r.counts.selfChecks),
			"errors":      float64(len(r.errs)),
			"divergences": float64(len(r.divergences)),
		},
	}
}

func buildEngine(suppliers, parts, deliveries int, seed int64, noCache bool) *server.Engine {
	st := bench.Generate(bench.Config{Suppliers: suppliers, Parts: parts, Deliveries: deliveries, Seed: seed})
	if err := st.CreateIndex("PART", "color", storage.HashIndex); err != nil {
		fatal(err)
	}
	if err := st.CreateIndex("PART", "price", storage.OrderedIndex); err != nil {
		fatal(err)
	}
	st.Analyze()
	return server.New(st, server.Options{NoPlanCache: noCache, Parallelism: 1})
}

// assertEqualResults proves the two engines (plan cache on/off) answer every
// pool query identically over identical stores, before any mutation diverges
// them — the "equal results" leg of the plan-cache claim.
func assertEqualResults(a, b *server.Engine) {
	for _, q := range queryPool {
		ra, err := a.QueryVerified(q.src)
		if err != nil {
			fatal(fmt.Errorf("compare %s (cached engine): %w", q.name, err))
		}
		rb, err := b.QueryVerified(q.src)
		if err != nil {
			fatal(fmt.Errorf("compare %s (uncached engine): %w", q.name, err))
		}
		if ra.Set.Len() != rb.Set.Len() || !ra.Set.SubsetOf(rb.Set) {
			fatal(fmt.Errorf("compare %s: cached engine returned %d rows, uncached %d",
				q.name, ra.Set.Len(), rb.Set.Len()))
		}
	}
	fmt.Printf("result equivalence: %d pool queries identical across cached/uncached engines (differentially verified)\n",
		len(queryPool))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "adlload: %v\n", err)
	os.Exit(1)
}

func main() {
	var (
		clients      = flag.Int("clients", 1000, "concurrent closed-loop clients")
		duration     = flag.Duration("duration", 5*time.Second, "run duration")
		insertFrac   = flag.Float64("insert-frac", 0.2, "fraction of operations that insert a PART")
		deleteFrac   = flag.Float64("delete-frac", 0, "fraction of operations that delete one of the client's own parts")
		updateFrac   = flag.Float64("update-frac", 0, "fraction of operations that update one of the client's own parts")
		verifyFrac   = flag.Float64("verify-frac", 0.02, "fraction of reads differentially verified, and of operations followed by a read-your-writes self-check")
		addr         = flag.String("addr", "", "drive a running adlserve at this base URL (e.g. http://localhost:8080) instead of in-process")
		suppliers    = flag.Int("suppliers", 400, "generated SUPPLIER rows (in-process)")
		parts        = flag.Int("parts", 800, "generated PART rows (in-process)")
		deliveries   = flag.Int("deliveries", 200, "generated DELIVERY rows (in-process)")
		seed         = flag.Int64("seed", 94, "workload seed")
		noCache      = flag.Bool("no-plan-cache", false, "disable the plan cache (in-process)")
		compareCache = flag.Bool("compare-cache", false, "run the workload twice, plan cache on and off, and compare p50")
		assertWin    = flag.Bool("assert", false, "exit non-zero unless the cached arm wins p50 in -compare-cache (and on any error always)")
		jsonOut      = flag.String("json", "", "write results as a benchjson fragment to this file")
		namePrefix   = flag.String("name", "Serve", "benchmark name prefix for the JSON fragment")
	)
	flag.Parse()

	cfg := config{
		clients:    *clients,
		duration:   *duration,
		insertFrac: *insertFrac,
		deleteFrac: *deleteFrac,
		updateFrac: *updateFrac,
		verifyFrac: *verifyFrac,
		seed:       *seed,
	}
	if cfg.insertFrac+cfg.deleteFrac+cfg.updateFrac > 1 {
		fatal(fmt.Errorf("insert/delete/update fractions sum past 1"))
	}
	var results []benchResult
	failed := false
	bad := func(r runResult) bool { return len(r.errs) > 0 || len(r.divergences) > 0 }

	switch {
	case *addr != "":
		hc := &http.Client{Timeout: 30 * time.Second}
		res := run(cfg, func() client { return httpClient{base: *addr, hc: hc} })
		res.report("http", cfg)
		results = append(results, res.bench(*namePrefix+"/http", cfg))
		failed = bad(res)

	case *compareCache:
		cached := buildEngine(*suppliers, *parts, *deliveries, *seed, false)
		uncached := buildEngine(*suppliers, *parts, *deliveries, *seed, true)
		assertEqualResults(cached, uncached)
		resCached := run(cfg, func() client { return localClient{eng: cached} })
		resCached.report("plancache", cfg)
		resUncached := run(cfg, func() client { return localClient{eng: uncached} })
		resUncached.report("replan", cfg)
		m := cached.Metrics()
		fmt.Printf("plan cache: %d hits, %d misses, %d epoch-drift replans, %d feedback evictions\n",
			m.CacheHits, m.CacheMiss, m.Replans, m.FeedbackEvictions)
		speedup := float64(resUncached.p50) / float64(resCached.p50)
		fmt.Printf("p50 plancache %v vs replan %v (%.2fx)\n",
			resCached.p50.Round(time.Microsecond), resUncached.p50.Round(time.Microsecond), speedup)
		results = append(results,
			resCached.bench(*namePrefix+"/plancache", cfg),
			resUncached.bench(*namePrefix+"/replan", cfg))
		failed = bad(resCached) || bad(resUncached)
		if *assertWin && resCached.p50 > resUncached.p50 {
			fmt.Fprintln(os.Stderr, "adlload: ASSERT FAILED: plan-cache arm lost on p50")
			failed = true
		}

	default:
		eng := buildEngine(*suppliers, *parts, *deliveries, *seed, *noCache)
		res := run(cfg, func() client { return localClient{eng: eng} })
		label := "plancache"
		if *noCache {
			label = "replan"
		}
		res.report(label, cfg)
		m := eng.Metrics()
		fmt.Printf("plan cache: %d hits, %d misses, %d epoch-drift replans, %d feedback evictions; store at seq %d, stats epoch %d\n",
			m.CacheHits, m.CacheMiss, m.Replans, m.FeedbackEvictions, m.Seq, m.StatsEpoch)
		results = append(results, res.bench(*namePrefix+"/"+label, cfg))
		failed = bad(res)
	}

	if *jsonOut != "" {
		blob, err := json.MarshalIndent(benchFile{Results: results}, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d results to %s\n", len(results), *jsonOut)
	}
	if failed {
		os.Exit(1)
	}
}
