package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/server"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	st := bench.Generate(bench.Config{Suppliers: 20, Parts: 50, Deliveries: 10, Seed: 94})
	st.Analyze()
	srv := httptest.NewServer(newMux(server.New(st, server.Options{Parallelism: 1}), false))
	t.Cleanup(srv.Close)
	return srv
}

// call POSTs a JSON body (or GETs when body is empty) and decodes the reply.
func call(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil && method != http.MethodGet {
		t.Fatalf("decode reply: %v", err)
	}
	return resp.StatusCode, out
}

func TestServeQuery(t *testing.T) {
	srv := newTestServer(t)
	code, out := call(t, "POST", srv.URL+"/query",
		`{"query": "select p.pname from p in PART where p.color = \"red\"", "verify": true, "result": true}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	if out["rows"].(float64) <= 0 {
		t.Fatalf("no rows: %v", out)
	}
	if _, ok := out["result"]; !ok {
		t.Fatalf("result requested but absent: %v", out)
	}
	if _, ok := out["evicted"]; !ok {
		t.Fatalf("reply lacks the evicted flag: %v", out)
	}
	// Bad query text is a client error, not a 500.
	code, out = call(t, "POST", srv.URL+"/query", `{"query": "selec nonsense"}`)
	if code != http.StatusBadRequest || out["error"] == nil {
		t.Fatalf("bad query: status %d, %v", code, out)
	}
}

func TestServeInsertDeleteUpdate(t *testing.T) {
	srv := newTestServer(t)
	obj := `{"tuple": [["pname", {"str": "wrench"}], ["price", {"int": 7}], ["color", {"str": "teal"}]]}`
	code, out := call(t, "POST", srv.URL+"/insert", `{"extent": "PART", "object": `+obj+`}`)
	if code != http.StatusOK {
		t.Fatalf("insert: status %d, %v", code, out)
	}
	oid := uint64(out["oid"].(float64))

	countTeal := func() float64 {
		_, q := call(t, "POST", srv.URL+"/query",
			`{"query": "select p.pname from p in PART where p.color = \"teal\""}`)
		return q["rows"].(float64)
	}
	if n := countTeal(); n != 1 {
		t.Fatalf("inserted row invisible: %v teal rows", n)
	}

	upd := `{"tuple": [["pname", {"str": "wrench"}], ["price", {"int": 9}], ["color", {"str": "mauve"}]]}`
	code, out = call(t, "POST", srv.URL+"/update",
		fmt.Sprintf(`{"extent": "PART", "oid": %d, "object": %s}`, oid, upd))
	if code != http.StatusOK {
		t.Fatalf("update: status %d, %v", code, out)
	}
	if n := countTeal(); n != 0 {
		t.Fatalf("update left the old state visible: %v teal rows", n)
	}

	code, out = call(t, "POST", srv.URL+"/delete",
		fmt.Sprintf(`{"extent": "PART", "oid": %d}`, oid))
	if code != http.StatusOK {
		t.Fatalf("delete: status %d, %v", code, out)
	}
	// Deleting again fails: the object is dead.
	code, out = call(t, "POST", srv.URL+"/delete",
		fmt.Sprintf(`{"extent": "PART", "oid": %d}`, oid))
	if code != http.StatusBadRequest || out["error"] == nil {
		t.Fatalf("double delete: status %d, %v", code, out)
	}
}

func TestServeMalformedAndWrongMethod(t *testing.T) {
	srv := newTestServer(t)
	for _, ep := range []string{"/query", "/insert", "/delete", "/update"} {
		if code, out := call(t, "POST", srv.URL+ep, `{not json`); code != http.StatusBadRequest || out["error"] == nil {
			t.Errorf("POST %s with malformed body: status %d, %v", ep, code, out)
		}
		if code, _ := call(t, "GET", srv.URL+ep, ""); code != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status %d, want 405", ep, code)
		}
	}
	// Tuple payload that isn't a tuple.
	if code, out := call(t, "POST", srv.URL+"/insert",
		`{"extent": "PART", "object": {"int": 3}}`); code != http.StatusBadRequest ||
		!strings.Contains(out["error"].(string), "not a tuple") {
		t.Errorf("non-tuple insert: status %d, %v", code, out)
	}
	// Unknown extent.
	if code, out := call(t, "POST", srv.URL+"/delete",
		`{"extent": "NOPE", "oid": 1}`); code != http.StatusBadRequest || out["error"] == nil {
		t.Errorf("unknown-extent delete: status %d, %v", code, out)
	}
}

func TestServeMetricsAndHealthz(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()

	call(t, "POST", srv.URL+"/query", `{"query": "select p.pname from p in PART"}`)
	code, out := call(t, "GET", srv.URL+"/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	eng, ok := out["engine"].(map[string]any)
	if !ok {
		t.Fatalf("metrics reply lacks engine block: %v", out)
	}
	if eng["queries"].(float64) < 1 {
		t.Fatalf("query counter did not move: %v", eng)
	}
	for _, k := range []string{"deletes", "updates", "feedback_evictions"} {
		if _, ok := eng[k]; !ok {
			t.Errorf("metrics lack %q: %v", k, eng)
		}
	}
	if _, ok := out["store"]; !ok {
		t.Fatalf("metrics reply lacks store block: %v", out)
	}
}
