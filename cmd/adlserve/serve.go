package main

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/server"
	"repro/internal/value"
)

// newMux wires the HTTP surface over one engine. It is the whole server
// minus flag parsing and the listener, so tests drive it through
// net/http/httptest.
func newMux(eng *server.Engine, verifyAll bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"engine": eng.Metrics(),
			"store":  eng.Store().Stats(),
		})
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req struct {
			Query  string `json:"query"`
			Verify bool   `json:"verify"`
			Result bool   `json:"result"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		run := eng.Query
		if req.Verify || verifyAll {
			run = eng.QueryVerified
		}
		res, err := run(req.Query)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		out := map[string]any{
			"rows":      res.Set.Len(),
			"seq":       res.Seq,
			"epoch":     res.Epoch,
			"cache_hit": res.CacheHit,
			"replanned": res.Replanned,
			"evicted":   res.Evicted,
		}
		if req.Result {
			out["result"] = res.Set.String()
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("/insert", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req struct {
			Extent string          `json:"extent"`
			Object json.RawMessage `json:"object"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		obj, err := decodeTuple(req.Object)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		oid, err := eng.Insert(req.Extent, obj)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"oid": uint64(oid)})
	})
	mux.HandleFunc("/delete", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req struct {
			Extent string `json:"extent"`
			OID    uint64 `json:"oid"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		if err := eng.Delete(req.Extent, value.OID(req.OID)); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"deleted": req.OID})
	})
	mux.HandleFunc("/update", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req struct {
			Extent string          `json:"extent"`
			OID    uint64          `json:"oid"`
			Object json.RawMessage `json:"object"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		obj, err := decodeTuple(req.Object)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if err := eng.Update(req.Extent, value.OID(req.OID), obj); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"updated": req.OID})
	})
	return mux
}

// decodeTuple decodes a tagged-JSON object payload into a tuple.
func decodeTuple(raw json.RawMessage) (*value.Tuple, error) {
	v, err := value.DecodeJSON(raw)
	if err != nil {
		return nil, fmt.Errorf("bad object: %w", err)
	}
	obj, ok := v.(*value.Tuple)
	if !ok {
		return nil, fmt.Errorf("object is %s, not a tuple", v.Kind())
	}
	return obj, nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]any{"error": fmt.Sprintf(format, args...)})
}
