// Command adlserve is the long-lived query server: it populates (or loads) a
// supplier-part store, then serves OOSQL queries and mutations over HTTP.
// Queries execute against MVCC snapshots pinned per request — a query sees
// exactly the mutations published before it started, never a torn state —
// and plan through a prepared-plan cache keyed on (query, stats epoch), with
// re-plan on epoch drift and runtime cardinality feedback: cached executions
// run instrumented, and a plan whose estimates drift past the q-error
// threshold is evicted and re-planned against fresh statistics.
//
//	adlserve -addr :8080 -suppliers 400 -parts 800 -deliveries 200
//
// Endpoints:
//
//	POST /query   {"query": "...", "verify": false, "result": false}
//	              → {"rows", "seq", "epoch", "cache_hit", "replanned", "evicted", ["result"]}
//	POST /insert  {"extent": "PART", "object": {tagged value JSON}}
//	              → {"oid"}
//	POST /delete  {"extent": "PART", "oid": 7}
//	              → {"deleted"}
//	POST /update  {"extent": "PART", "oid": 7, "object": {tagged value JSON}}
//	              → {"updated"}
//	GET  /metrics → engine counters, stats epoch, store I/O meters
//	GET  /healthz → ok
//
// The object payloads use the same tagged encoding as store snapshots
// (internal/value JSON codec); an update's object must not carry the id
// field. With -verify-all every query is differentially checked against a
// serial re-execution of the untransformed nested form on the same pinned
// snapshot.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"

	"repro/internal/bench"
	"repro/internal/server"
	"repro/internal/storage"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		suppliers   = flag.Int("suppliers", 400, "generated SUPPLIER rows")
		parts       = flag.Int("parts", 800, "generated PART rows")
		deliveries  = flag.Int("deliveries", 200, "generated DELIVERY rows")
		seed        = flag.Int64("seed", 94, "generator seed")
		parallelism = flag.Int("parallelism", 0, "planner parallelism (0 = NumCPU)")
		noCache     = flag.Bool("no-plan-cache", false, "plan every query from scratch (A/B baseline)")
		noFeedback  = flag.Bool("no-feedback", false, "disable runtime cardinality feedback eviction")
		verifyAll   = flag.Bool("verify-all", false, "differentially verify every query against a serial re-execution")
		indexes     = flag.Bool("indexes", true, "create hash indexes on PART.color and PART.price")
	)
	flag.Parse()

	st := bench.Generate(bench.Config{
		Suppliers: *suppliers, Parts: *parts, Deliveries: *deliveries, Seed: *seed,
	})
	if *indexes {
		if err := st.CreateIndex("PART", "color", storage.HashIndex); err != nil {
			log.Fatalf("adlserve: %v", err)
		}
		if err := st.CreateIndex("PART", "price", storage.OrderedIndex); err != nil {
			log.Fatalf("adlserve: %v", err)
		}
	}
	st.Analyze()
	eng := server.New(st, server.Options{
		NoPlanCache: *noCache, NoFeedback: *noFeedback, Parallelism: *parallelism,
	})

	log.Printf("adlserve: listening on %s (%d suppliers, %d parts, %d deliveries, plan cache %v, feedback %v)",
		*addr, *suppliers, *parts, *deliveries, !*noCache, !*noFeedback)
	if err := http.ListenAndServe(*addr, newMux(eng, *verifyAll)); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}
