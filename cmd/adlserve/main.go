// Command adlserve is the long-lived query server: it populates (or loads) a
// supplier-part store, then serves OOSQL queries and inserts over HTTP.
// Queries execute against MVCC snapshots pinned per request — a query sees
// exactly the inserts published before it started, never a torn state — and
// plan through a prepared-plan cache keyed on (query, stats epoch), with
// re-plan on epoch drift.
//
//	adlserve -addr :8080 -suppliers 400 -parts 800 -deliveries 200
//
// Endpoints:
//
//	POST /query   {"query": "...", "verify": false, "result": false}
//	              → {"rows", "seq", "epoch", "cache_hit", "replanned", ["result"]}
//	POST /insert  {"extent": "PART", "object": {tagged value JSON}}
//	              → {"oid"}
//	GET  /metrics → engine counters, stats epoch, store I/O meters
//	GET  /healthz → ok
//
// The object payload of /insert uses the same tagged encoding as store
// snapshots (internal/value JSON codec). With -verify-all every query is
// differentially checked against a serial re-execution of the untransformed
// nested form on the same pinned snapshot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/bench"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/value"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		suppliers   = flag.Int("suppliers", 400, "generated SUPPLIER rows")
		parts       = flag.Int("parts", 800, "generated PART rows")
		deliveries  = flag.Int("deliveries", 200, "generated DELIVERY rows")
		seed        = flag.Int64("seed", 94, "generator seed")
		parallelism = flag.Int("parallelism", 0, "planner parallelism (0 = NumCPU)")
		noCache     = flag.Bool("no-plan-cache", false, "plan every query from scratch (A/B baseline)")
		verifyAll   = flag.Bool("verify-all", false, "differentially verify every query against a serial re-execution")
		indexes     = flag.Bool("indexes", true, "create hash indexes on PART.color and PART.price")
	)
	flag.Parse()

	st := bench.Generate(bench.Config{
		Suppliers: *suppliers, Parts: *parts, Deliveries: *deliveries, Seed: *seed,
	})
	if *indexes {
		if err := st.CreateIndex("PART", "color", storage.HashIndex); err != nil {
			log.Fatalf("adlserve: %v", err)
		}
		if err := st.CreateIndex("PART", "price", storage.OrderedIndex); err != nil {
			log.Fatalf("adlserve: %v", err)
		}
	}
	st.Analyze()
	eng := server.New(st, server.Options{NoPlanCache: *noCache, Parallelism: *parallelism})

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"engine": eng.Metrics(),
			"store":  st.Stats(),
		})
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req struct {
			Query  string `json:"query"`
			Verify bool   `json:"verify"`
			Result bool   `json:"result"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		run := eng.Query
		if req.Verify || *verifyAll {
			run = eng.QueryVerified
		}
		res, err := run(req.Query)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		out := map[string]any{
			"rows":      res.Set.Len(),
			"seq":       res.Seq,
			"epoch":     res.Epoch,
			"cache_hit": res.CacheHit,
			"replanned": res.Replanned,
		}
		if req.Result {
			out["result"] = res.Set.String()
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("/insert", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		var req struct {
			Extent string          `json:"extent"`
			Object json.RawMessage `json:"object"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		v, err := value.DecodeJSON(req.Object)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad object: %v", err)
			return
		}
		obj, ok := v.(*value.Tuple)
		if !ok {
			httpError(w, http.StatusBadRequest, "object is %s, not a tuple", v.Kind())
			return
		}
		oid, err := eng.Insert(req.Extent, obj)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"oid": uint64(oid)})
	})

	log.Printf("adlserve: listening on %s (%d suppliers, %d parts, %d deliveries, plan cache %v)",
		*addr, *suppliers, *parts, *deliveries, !*noCache)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]any{"error": fmt.Sprintf(format, args...)})
}
