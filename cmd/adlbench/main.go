// Command adlbench runs the performance experiment suite B1–B14 (see
// DESIGN.md §4) and prints paper-style result tables. Every optimized arm is
// verified against the nested-loop reference before its time is reported.
//
// Usage:
//
//	adlbench                 # the full suite at default scales
//	adlbench -exp B3         # one experiment
//	adlbench -quick          # smaller scales (used by CI-style runs)
//	adlbench -parallel 8     # B8's parallel arm with 8 partitions
//	adlbench -parallel 0     # B8's parallel arm kept serial (sweep control)
//	adlbench -exp B9         # forced strategies vs the cost-based optimizer
//	adlbench -analyze=false  # B9's optimizer without collected statistics
//	adlbench -exp B10        # join-order enumeration vs rewriter order
//	adlbench -exp B11        # index-nested-loop vs forced hash join
//	adlbench -indexes        # create secondary indexes for B11 (default)
//	adlbench -indexes=false  # B11 planned without indexes (A/B control)
//	adlbench -exp B12        # histogram estimates vs the NDV-only model
//	adlbench -exp B13        # scalar vs vectorized batch execution
//	adlbench -exp B14        # four-way: scalar / parallel / vectorized / parallel-vectorized
//	adlbench -vectorized     # run every optimized arm through the batch pipeline
//	adlbench -batch 256      # vectorized rows per batch (rejects n ≤ 0)
//	adlbench -explain        # print each experiment's annotated plan first
//
// Every arm's wall time is reported next to a runtime.MemStats-based
// allocation delta, so perf comparisons can quote allocation wins straight
// from `adlbench -quick` without a separate go test -bench run.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/experiments"
	"repro/internal/plan"
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment to run (B1..B14); empty = all")
		quick      = flag.Bool("quick", false, "smaller scales")
		parallel   = flag.Int("parallel", -1, "partition/worker count for the parallel arms: n > 0 partitions, 0 = serial, negative = NumCPU")
		analyze    = flag.Bool("analyze", true, "collect statistics (ANALYZE) before planning B9's optimizer arm; -analyze=false falls back to the size threshold")
		indexes    = flag.Bool("indexes", true, "create secondary indexes for B11's workload; -indexes=false plans the same query without them (A/B control)")
		vectorized = flag.Bool("vectorized", false, "plan every optimized arm over the batch execution pipeline (plan.Config.Vectorized)")
		batch      = flag.Int("batch", 0, "vectorized rows per batch; 0 = planner default, non-positive values are rejected")
		explain    = flag.Bool("explain", false, "print each experiment's annotated Plan.Explain() before running it")
	)
	flag.Parse()

	if *batch != 0 {
		var c plan.Config
		if err := c.SetBatchSize(*batch); err != nil {
			fmt.Fprintf(os.Stderr, "adlbench: %v\n", err)
			os.Exit(2)
		}
	}
	experiments.ExecMode.Vectorized = *vectorized
	experiments.ExecMode.BatchSize = *batch

	scale := func(full, small int) int {
		if *quick {
			return small
		}
		return full
	}
	seed := int64(94)

	runs := []struct {
		name string
		run  func() (*bench.Table, error)
	}{
		{"B1", func() (*bench.Table, error) {
			return experiments.B1([][2]int{
				{scale(200, 50), scale(400, 100)},
				{scale(800, 100), scale(1600, 200)},
				{scale(3200, 200), scale(6400, 400)},
			}, seed)
		}},
		{"B2", func() (*bench.Table, error) {
			return experiments.B2([][2]int{
				{scale(200, 50), scale(400, 100)},
				{scale(800, 100), scale(1600, 200)},
				{scale(3200, 200), scale(6400, 400)},
			}, seed)
		}},
		{"B3", func() (*bench.Table, error) {
			return experiments.B3(scale(600, 100), scale(300, 60),
				[]float64{0, 0.1, 0.5}, seed)
		}},
		{"B4", func() (*bench.Table, error) {
			return experiments.B4(scale(800, 100), scale(2000, 200), scale(16, 8),
				[]int{0, scale(1024, 128), scale(256, 64), scale(64, 16)}, seed)
		}},
		{"B5", func() (*bench.Table, error) {
			return experiments.B5([][2]int{
				{scale(1000, 100), scale(1000, 100)},
				{scale(10000, 400), scale(5000, 400)},
			}, seed)
		}},
		{"B6", func() (*bench.Table, error) {
			return experiments.B6([][2]int{
				{scale(200, 50), scale(200, 50)},
				{scale(800, 100), scale(800, 100)},
			}, seed)
		}},
		{"B7", func() (*bench.Table, error) {
			return experiments.B7(scale(500, 80), scale(1000, 120), seed)
		}},
		{"B8", func() (*bench.Table, error) {
			return experiments.B8([][2]int{
				{scale(2000, 200), scale(20000, 2000)},
				{scale(8000, 400), scale(80000, 4000)},
			}, *parallel, seed)
		}},
		{"B9", func() (*bench.Table, error) {
			return experiments.B9(scale(2000, 200), scale(20000, 2000),
				*parallel, *analyze, seed)
		}},
		{"B10", func() (*bench.Table, error) {
			return experiments.B10(scale(20000, 2000), scale(2000, 200),
				scale(400, 80), 8, *parallel, seed)
		}},
		{"B11", func() (*bench.Table, error) {
			return experiments.B11(scale(2000, 200), scale(50000, 5000),
				*parallel, *indexes, seed)
		}},
		{"B12", func() (*bench.Table, error) {
			return experiments.B12(scale(20000, 5000), scale(400, 200),
				*parallel, seed)
		}},
		{"B13", func() (*bench.Table, error) {
			return experiments.B13(scale(400, 60), scale(40000, 1200),
				*batch, seed)
		}},
		{"B14", func() (*bench.Table, error) {
			return experiments.B14(scale(400, 60), scale(200000, 1200),
				*batch, *parallel, seed)
		}},
	}

	ran := false
	for _, r := range runs {
		if *exp != "" && r.name != *exp {
			continue
		}
		ran = true
		if *explain {
			plans, err := experiments.ExplainPlans(r.name, *parallel, *analyze, seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "adlbench: %s: explain: %v\n", r.name, err)
				os.Exit(1)
			}
			fmt.Printf("== %s plans ==\n%s\n", r.name, plans)
		}
		t, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "adlbench: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println(t)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "adlbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
