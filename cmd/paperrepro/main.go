// Command paperrepro regenerates every table and figure of Steenhagen et
// al., "From Nested-Loop to Join Queries in OODB" (VLDB 1994), by running
// the implementation — nothing is hard-coded:
//
//	T1  Table 1: set comparison ⇒ quantifier expressions
//	T2  Table 2: predicate ⇒ quantifier expressions
//	T3  Table 3: the static value of P(x, ∅) per comparator
//	F1  Figure 1: nesting involving a set-valued attribute
//	F2  Figure 2: the Complex Object bug (with intermediate results)
//	F3  Figure 3: the nestjoin example
//	RE1 Rewriting Example 1: set membership ⇒ semijoin
//	RE2 Rewriting Example 2: set inclusion ⇒ antijoin
//	RE3 Rewriting Example 3: exchanging quantifiers
//	EQ  Example Queries 1–6 through the full pipeline
//
// Usage:
//
//	paperrepro                 # all artifacts
//	paperrepro -artifact T3    # a single artifact
//	paperrepro -schema         # the §2 schema and its ADL mapping
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		artifact   = flag.String("artifact", "", "artifact to regenerate (T1 T2 T3 F1 F2 F3 RE1 RE2 RE3 EQ); empty = all")
		schemaOnly = flag.Bool("schema", false, "print the §2 schema and its ADL mapping")
	)
	flag.Parse()

	if *schemaOnly {
		out, err := experiments.SchemaArtifact()
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}

	arts := experiments.Artifacts()
	keys := experiments.ArtifactKeys()
	if *artifact != "" {
		gen, ok := arts[*artifact]
		if !ok {
			fatal(fmt.Errorf("unknown artifact %q (have %s)", *artifact, strings.Join(keys, " ")))
		}
		out, err := gen()
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}
	for i, k := range keys {
		if i > 0 {
			fmt.Println(strings.Repeat("─", 72))
		}
		out, err := arts[k]()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", k, err))
		}
		fmt.Print(out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperrepro:", err)
	os.Exit(1)
}
