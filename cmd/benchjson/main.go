// Command benchjson converts `go test -bench` text output into a machine-
// readable JSON perf-trajectory file. CI runs the benchmark suite once per
// commit and archives the result (make bench-json → BENCH_RESULTS.json), so
// regressions show up as a number series across commits instead of
// anecdotes in PR descriptions.
//
// Usage:
//
//	go test -bench=. -benchmem -run '^$' . | benchjson -out BENCH_RESULTS.json
//	benchjson -merge serve.json -out BENCH_RESULTS.json
//	benchjson -compare -threshold 25 BENCH_RESULTS.json fresh.json
//	benchjson -alloc-gate 5 -match S400 fresh.json
//
// Only benchmark result lines are parsed; everything else (pass/fail
// trailers, goos/goarch headers) is carried into the metadata block or
// ignored. The tool never fails on unparseable lines — a half-broken
// benchmark run should still archive what it produced.
//
// -merge folds the results of another benchjson file (for example the
// closed-loop serving results cmd/adlload emits) into the output, replacing
// same-named entries and keeping the rest; with no stdin piped in, -merge
// updates -out in place. -compare is the CI regression gate: it compares a
// baseline file against a fresh run and fails (exit 1) when any benchmark
// present in both regressed its wall time by more than -threshold percent.
// Serving metrics (Metrics map) ride along in both modes but are reported
// only — run-to-run QPS on shared CI runners is too noisy to gate on.
// -alloc-gate checks the scalar-vs-batch benchmark pairs inside ONE file:
// each vectorized (and parallel-vectorized) arm must allocate at most the
// given percent of its scalar twin's allocs/op. Allocation counts are deterministic, so unlike wall time
// this gate is safe at a tight threshold on shared runners. -match restricts
// the gate to pairs whose name matches (CI gates the full-scale S400 pairs:
// smoke scales carry a fixed result-materialization floor that dominates
// their small scalar arms, so a ratio gate is meaningless there).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics carries named measurements that are not per-op wall time —
	// the serving driver records p50_ns, p99_ns, qps, clients here.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the emitted artifact shape.
type File struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// benchLine matches e.g.
//
//	BenchmarkB12/histograms-8   42   2271934 ns/op   2303776 B/op   19052 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parse(lines *bufio.Scanner) File {
	var f File
	for lines.Scan() {
		line := lines.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			f.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			r := Result{Name: m[1]}
			r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
			r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
			if m[4] != "" {
				r.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
			}
			if m[5] != "" {
				r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
			}
			f.Results = append(f.Results, r)
		}
	}
	return f
}

func readFile(path string) (File, error) {
	var f File
	blob, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	err = json.Unmarshal(blob, &f)
	return f, err
}

// merge folds extra into base: same-named results are replaced, new ones
// appended; base order is preserved so diffs against the committed baseline
// stay minimal.
func merge(base, extra File) File {
	pos := map[string]int{}
	for i, r := range base.Results {
		pos[r.Name] = i
	}
	for _, r := range extra.Results {
		if i, ok := pos[r.Name]; ok {
			base.Results[i] = r
		} else {
			pos[r.Name] = len(base.Results)
			base.Results = append(base.Results, r)
		}
	}
	if base.Goos == "" {
		base.Goos, base.Goarch, base.Pkg, base.CPU = extra.Goos, extra.Goarch, extra.Pkg, extra.CPU
	}
	return base
}

// allocGate checks every scalar-vs-batch benchmark pair in one file: a
// result with a "/scalar" path segment is paired with the same name under
// "/vectorized" (so B1's scalar_exec/vectorized_exec arms pair up too) and,
// when present, under "/parallel-vectorized" (B14's four-way arms), and
// each batch arm must allocate at most pct percent of the scalar arm's
// allocs/op — the claim behind the batch pipeline is near-zero steady-state
// allocation (pooled buffers even across worker goroutines), so a creeping
// alloc count is a regression even when wall time still looks fine.
func allocGate(f File, pct float64, match *regexp.Regexp, w *os.File) (failed, compared int) {
	byName := map[string]Result{}
	names := make([]string, 0, len(f.Results))
	for _, r := range f.Results {
		byName[r.Name] = r
		names = append(names, r.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !strings.Contains(name, "/scalar") || !match.MatchString(name) {
			continue
		}
		sr := byName[name]
		if sr.AllocsPerOp <= 0 {
			continue
		}
		for _, arm := range []string{"/vectorized", "/parallel-vectorized"} {
			vr, ok := byName[strings.Replace(name, "/scalar", arm, 1)]
			if !ok || vr.AllocsPerOp <= 0 {
				continue
			}
			compared++
			limit := float64(sr.AllocsPerOp) * pct / 100
			if float64(vr.AllocsPerOp) > limit {
				failed++
				fmt.Fprintf(w, "ALLOC REGRESSION %-55s %8d allocs/op > %.0f%% of scalar's %d\n",
					vr.Name, vr.AllocsPerOp, pct, sr.AllocsPerOp)
			}
		}
	}
	return failed, compared
}

// compare reports the benchmarks present in both files whose fresh wall
// time regressed beyond the threshold.
func compare(base, fresh File, thresholdPct float64, w *os.File) (regressed int, compared int) {
	baseline := map[string]Result{}
	for _, r := range base.Results {
		baseline[r.Name] = r
	}
	names := make([]string, 0, len(fresh.Results))
	for _, r := range fresh.Results {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	freshBy := map[string]Result{}
	for _, r := range fresh.Results {
		freshBy[r.Name] = r
	}
	for _, name := range names {
		nr := freshBy[name]
		br, ok := baseline[name]
		if !ok || br.NsPerOp <= 0 || nr.NsPerOp <= 0 {
			continue
		}
		compared++
		pct := (nr.NsPerOp - br.NsPerOp) / br.NsPerOp * 100
		if pct > thresholdPct {
			regressed++
			fmt.Fprintf(w, "REGRESSION %-60s %12.0f → %12.0f ns/op (%+.1f%% > %.0f%%)\n",
				name, br.NsPerOp, nr.NsPerOp, pct, thresholdPct)
		}
	}
	return regressed, compared
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	mergePath := flag.String("merge", "", "benchjson file whose results are folded into the output")
	comparePair := flag.Bool("compare", false, "compare two files: baseline fresh; exit 1 on regression")
	threshold := flag.Float64("threshold", 25, "regression threshold in percent for -compare")
	gatePct := flag.Float64("alloc-gate", 0, "check scalar vs (parallel-)vectorized pairs in one file: each batch arm allocs/op must be ≤ this percent of the scalar arm; exit 1 otherwise")
	gateMatch := flag.String("match", "", "regexp restricting which pairs -alloc-gate checks (e.g. S400 for the full-scale pairs); empty = all")
	flag.Parse()

	if *gatePct > 0 {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "benchjson: -alloc-gate needs exactly one file")
			os.Exit(2)
		}
		match, err := regexp.Compile(*gateMatch)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: -match: %v\n", err)
			os.Exit(2)
		}
		f, err := readFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		failed, compared := allocGate(f, *gatePct, match, os.Stdout)
		fmt.Printf("benchjson: checked %d scalar/vectorized pairs in %s, %d above the %.0f%% alloc budget\n",
			compared, flag.Arg(0), failed, *gatePct)
		if compared == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: no scalar/vectorized pairs found — gate would pass vacuously")
			os.Exit(1)
		}
		if failed > 0 {
			os.Exit(1)
		}
		return
	}

	if *comparePair {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: baseline fresh")
			os.Exit(2)
		}
		base, err := readFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		fresh, err := readFile(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		regressed, compared := compare(base, fresh, *threshold, os.Stdout)
		fmt.Printf("benchjson: compared %d benchmarks against %s, %d regressed beyond %.0f%%\n",
			compared, flag.Arg(0), regressed, *threshold)
		if regressed > 0 {
			os.Exit(1)
		}
		return
	}

	var f File
	stat, _ := os.Stdin.Stat()
	if stat != nil && stat.Mode()&os.ModeCharDevice == 0 {
		f = parse(bufio.NewScanner(os.Stdin))
	} else if *mergePath != "" && *out != "" {
		// In-place merge: start from the existing output file.
		if existing, err := readFile(*out); err == nil {
			f = existing
		}
	}
	if *mergePath != "" {
		extra, err := readFile(*mergePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		f = merge(f, extra)
	}
	blob, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(f.Results), *out)
}
