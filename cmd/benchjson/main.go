// Command benchjson converts `go test -bench` text output into a machine-
// readable JSON perf-trajectory file. CI runs the benchmark suite once per
// commit and archives the result (make bench-json → BENCH_RESULTS.json), so
// regressions show up as a number series across commits instead of
// anecdotes in PR descriptions.
//
// Usage:
//
//	go test -bench=. -benchmem -run '^$' . | benchjson -out BENCH_RESULTS.json
//
// Only benchmark result lines are parsed; everything else (pass/fail
// trailers, goos/goarch headers) is carried into the metadata block or
// ignored. The tool never fails on unparseable lines — a half-broken
// benchmark run should still archive what it produced.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// File is the emitted artifact shape.
type File struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// benchLine matches e.g.
//
//	BenchmarkB12/histograms-8   42   2271934 ns/op   2303776 B/op   19052 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parse(lines *bufio.Scanner) File {
	var f File
	for lines.Scan() {
		line := lines.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			f.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			r := Result{Name: m[1]}
			r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
			r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
			if m[4] != "" {
				r.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
			}
			if m[5] != "" {
				r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
			}
			f.Results = append(f.Results, r)
		}
	}
	return f
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	f := parse(bufio.NewScanner(os.Stdin))
	blob, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(f.Results), *out)
}
