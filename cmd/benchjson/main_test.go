package main

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkB12/ndv_only-8         	       1	  18377058 ns/op	 8551600 B/op	   67582 allocs/op
BenchmarkB12/histograms-8       	       3	   2271934 ns/op	 2303776 B/op	   19052 allocs/op
BenchmarkPlain 	     100	  1234.5 ns/op
some unrelated line
PASS
ok  	repro	0.168s
`
	f := parse(bufio.NewScanner(strings.NewReader(in)))
	if f.Goos != "linux" || f.Goarch != "amd64" || f.Pkg != "repro" || f.CPU == "" {
		t.Errorf("metadata mis-parsed: %+v", f)
	}
	if len(f.Results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(f.Results), f.Results)
	}
	r := f.Results[0]
	if r.Name != "BenchmarkB12/ndv_only" || r.Iterations != 1 ||
		r.NsPerOp != 18377058 || r.BytesPerOp != 8551600 || r.AllocsPerOp != 67582 {
		t.Errorf("first result mis-parsed: %+v", r)
	}
	if p := f.Results[2]; p.Name != "BenchmarkPlain" || p.NsPerOp != 1234.5 || p.BytesPerOp != 0 {
		t.Errorf("plain result mis-parsed: %+v", p)
	}
}

func TestMergeReplacesAndAppends(t *testing.T) {
	base := File{
		Goos: "linux",
		Results: []Result{
			{Name: "BenchmarkA", NsPerOp: 100},
			{Name: "BenchmarkB", NsPerOp: 200},
		},
	}
	extra := File{Results: []Result{
		{Name: "BenchmarkB", NsPerOp: 250, Metrics: map[string]float64{"qps": 1000}},
		{Name: "BenchmarkServe", NsPerOp: 50},
	}}
	got := merge(base, extra)
	if len(got.Results) != 3 {
		t.Fatalf("merged %d results, want 3: %+v", len(got.Results), got.Results)
	}
	// Base order preserved, same-named entry replaced in place.
	if got.Results[0].Name != "BenchmarkA" || got.Results[1].Name != "BenchmarkB" ||
		got.Results[2].Name != "BenchmarkServe" {
		t.Fatalf("order = %+v", got.Results)
	}
	if got.Results[1].NsPerOp != 250 || got.Results[1].Metrics["qps"] != 1000 {
		t.Fatalf("replaced entry = %+v", got.Results[1])
	}
	if got.Goos != "linux" {
		t.Fatalf("base metadata lost: %q", got.Goos)
	}
}

func TestCompareFlagsOnlyRealRegressions(t *testing.T) {
	base := File{Results: []Result{
		{Name: "BenchmarkStable", NsPerOp: 100},
		{Name: "BenchmarkSlower", NsPerOp: 100},
		{Name: "BenchmarkFaster", NsPerOp: 100},
		{Name: "BenchmarkGone", NsPerOp: 100},
	}}
	fresh := File{Results: []Result{
		{Name: "BenchmarkStable", NsPerOp: 110}, // +10% — under threshold
		{Name: "BenchmarkSlower", NsPerOp: 200}, // +100% — regression
		{Name: "BenchmarkFaster", NsPerOp: 50},  // improvement
		{Name: "BenchmarkNew", NsPerOp: 9999},   // no baseline — skipped
	}}
	regressed, compared := compare(base, fresh, 25, os.Stdout)
	if compared != 3 {
		t.Fatalf("compared = %d, want 3 (common names only)", compared)
	}
	if regressed != 1 {
		t.Fatalf("regressed = %d, want 1 (only the +100%% entry)", regressed)
	}
	// A looser threshold lets everything pass.
	if r, _ := compare(base, fresh, 150, os.Stdout); r != 0 {
		t.Fatalf("regressed = %d at 150%% threshold, want 0", r)
	}
}

func TestReadFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(`{"goos": "linux", "results": [{"name": "BenchmarkX", "iterations": 5, "ns_per_op": 12.5}]}`), 0o644)
	f, err := readFile(good)
	if err != nil {
		t.Fatalf("readFile: %v", err)
	}
	if f.Goos != "linux" || len(f.Results) != 1 || f.Results[0].NsPerOp != 12.5 {
		t.Fatalf("readFile = %+v", f)
	}

	if _, err := readFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatalf("missing file must error")
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"results": [{]`), 0o644)
	if _, err := readFile(bad); err == nil {
		t.Fatalf("malformed JSON must error")
	}
}

func TestMergeCollisionsAndMetadataAdoption(t *testing.T) {
	// An empty base adopts the extra's metadata.
	extra := File{Goos: "darwin", Goarch: "arm64", Pkg: "x", CPU: "M",
		Results: []Result{{Name: "BenchmarkA", NsPerOp: 1}}}
	got := merge(File{}, extra)
	if got.Goos != "darwin" || got.Goarch != "arm64" || got.Pkg != "x" || got.CPU != "M" {
		t.Fatalf("empty base did not adopt metadata: %+v", got)
	}

	// Duplicate names inside extra: the last write wins, no duplicate entry.
	dup := File{Results: []Result{
		{Name: "BenchmarkA", NsPerOp: 10},
		{Name: "BenchmarkA", NsPerOp: 20},
	}}
	got = merge(File{Results: []Result{{Name: "BenchmarkA", NsPerOp: 1}}}, dup)
	if len(got.Results) != 1 || got.Results[0].NsPerOp != 20 {
		t.Fatalf("duplicate-name merge = %+v", got.Results)
	}

	// A populated base keeps its own metadata.
	got = merge(File{Goos: "linux"}, extra)
	if got.Goos != "linux" {
		t.Fatalf("populated base lost metadata: %q", got.Goos)
	}
}

func TestCompareThresholdEdges(t *testing.T) {
	base := File{Results: []Result{
		{Name: "BenchmarkExact", NsPerOp: 100},
		{Name: "BenchmarkHair", NsPerOp: 100},
		{Name: "BenchmarkZeroBase", NsPerOp: 0},
		{Name: "BenchmarkZeroFresh", NsPerOp: 100},
	}}
	fresh := File{Results: []Result{
		{Name: "BenchmarkExact", NsPerOp: 125},     // exactly +25%: not past the threshold
		{Name: "BenchmarkHair", NsPerOp: 125.0001}, // a hair past: regression
		{Name: "BenchmarkZeroBase", NsPerOp: 50},   // zero baseline: skipped
		{Name: "BenchmarkZeroFresh", NsPerOp: 0},   // zero fresh: skipped
	}}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open devnull: %v", err)
	}
	defer devnull.Close()
	regressed, compared := compare(base, fresh, 25, devnull)
	if compared != 2 {
		t.Fatalf("compared = %d, want 2 (zero-ns entries skipped)", compared)
	}
	if regressed != 1 {
		t.Fatalf("regressed = %d, want 1 (exactly-at-threshold passes)", regressed)
	}
}

func TestCompareDisjointFiles(t *testing.T) {
	base := File{Results: []Result{{Name: "BenchmarkOnlyBase", NsPerOp: 1}}}
	fresh := File{Results: []Result{{Name: "BenchmarkOnlyFresh", NsPerOp: 99999}}}
	regressed, compared := compare(base, fresh, 25, os.Stdout)
	if regressed != 0 || compared != 0 {
		t.Fatalf("disjoint compare = %d regressed, %d compared; want 0, 0", regressed, compared)
	}
}

func TestAllocGatePairsAndBudget(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open devnull: %v", err)
	}
	defer devnull.Close()
	f := File{Results: []Result{
		// Within budget: 40 ≤ 5% of 1000.
		{Name: "BenchmarkB13/scalar/S400", AllocsPerOp: 1000, NsPerOp: 1},
		{Name: "BenchmarkB13/vectorized/S400", AllocsPerOp: 40, NsPerOp: 1},
		// Over budget — and the _exec suffix must still pair up.
		{Name: "BenchmarkB1/scalar_exec/S400", AllocsPerOp: 1000, NsPerOp: 1},
		{Name: "BenchmarkB1/vectorized_exec/S400", AllocsPerOp: 60, NsPerOp: 1},
		// No vectorized twin: skipped, not failed.
		{Name: "BenchmarkB2/scalar/S400", AllocsPerOp: 500, NsPerOp: 1},
		// Zero alloc counts (no -benchmem): skipped.
		{Name: "BenchmarkB3/scalar/S400", NsPerOp: 1},
		{Name: "BenchmarkB3/vectorized/S400", NsPerOp: 1},
	}}
	failed, compared := allocGate(f, 5, regexp.MustCompile(""), devnull)
	if compared != 2 {
		t.Fatalf("compared = %d, want 2 (unpaired and alloc-less entries skipped)", compared)
	}
	if failed != 1 {
		t.Fatalf("failed = %d, want 1 (only the 6%% pair)", failed)
	}
	// A looser budget clears the failing pair.
	if fl, _ := allocGate(f, 10, regexp.MustCompile(""), devnull); fl != 0 {
		t.Fatalf("failed = %d at 10%% budget, want 0", fl)
	}
}

func TestAllocGateMatchRestrictsPairs(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open devnull: %v", err)
	}
	defer devnull.Close()
	f := File{Results: []Result{
		// Smoke scale: over budget, but excluded by -match S400.
		{Name: "BenchmarkB13/scalar/S100", AllocsPerOp: 100, NsPerOp: 1},
		{Name: "BenchmarkB13/vectorized/S100", AllocsPerOp: 40, NsPerOp: 1},
		// Full scale: within budget.
		{Name: "BenchmarkB13/scalar/S400", AllocsPerOp: 1000, NsPerOp: 1},
		{Name: "BenchmarkB13/vectorized/S400", AllocsPerOp: 40, NsPerOp: 1},
	}}
	failed, compared := allocGate(f, 5, regexp.MustCompile("S400"), devnull)
	if compared != 1 || failed != 0 {
		t.Fatalf("S400-matched gate = %d failed, %d compared; want 0, 1", failed, compared)
	}
	// Without the restriction the smoke pair fails the budget.
	failed, compared = allocGate(f, 5, regexp.MustCompile(""), devnull)
	if compared != 2 || failed != 1 {
		t.Fatalf("unrestricted gate = %d failed, %d compared; want 1, 2", failed, compared)
	}
}
