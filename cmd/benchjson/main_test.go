package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkB12/ndv_only-8         	       1	  18377058 ns/op	 8551600 B/op	   67582 allocs/op
BenchmarkB12/histograms-8       	       3	   2271934 ns/op	 2303776 B/op	   19052 allocs/op
BenchmarkPlain 	     100	  1234.5 ns/op
some unrelated line
PASS
ok  	repro	0.168s
`
	f := parse(bufio.NewScanner(strings.NewReader(in)))
	if f.Goos != "linux" || f.Goarch != "amd64" || f.Pkg != "repro" || f.CPU == "" {
		t.Errorf("metadata mis-parsed: %+v", f)
	}
	if len(f.Results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(f.Results), f.Results)
	}
	r := f.Results[0]
	if r.Name != "BenchmarkB12/ndv_only" || r.Iterations != 1 ||
		r.NsPerOp != 18377058 || r.BytesPerOp != 8551600 || r.AllocsPerOp != 67582 {
		t.Errorf("first result mis-parsed: %+v", r)
	}
	if p := f.Results[2]; p.Name != "BenchmarkPlain" || p.NsPerOp != 1234.5 || p.BytesPerOp != 0 {
		t.Errorf("plain result mis-parsed: %+v", p)
	}
}
