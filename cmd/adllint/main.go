// Command adllint runs the engine's custom static-analysis suite: five
// analyzers encoding the concurrency and clone-safety invariants the
// serving layer depends on (clonesafety, snapshotdiscipline, atomicmeter,
// closepropagate, batchimmutable), plus the advisory fieldalign check
// behind -fieldalign.
//
// Usage:
//
//	adllint [-list] [-fieldalign] [packages...]
//
// Packages default to ./... resolved from the current directory. Exit code
// 0 means clean, 1 means findings, 2 means packages failed to load.
// Findings are suppressed with `//lint:adllint <analyzer> <reason>` on the
// offending line or the line above; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint/adllint"
)

func main() {
	listFlag := flag.Bool("list", false, "list the analyzers and their invariants, then exit")
	fieldalignFlag := flag.Bool("fieldalign", false, "also run the advisory struct-padding analyzer")
	dirFlag := flag.String("dir", ".", "directory to resolve package patterns from")
	flag.Parse()

	suite := adllint.Suite()
	if *fieldalignFlag {
		suite = append(suite, adllint.Advisory()...)
	}
	if *listFlag {
		for _, az := range suite {
			fmt.Printf("%s\n\t%s\n", az.Name, az.Doc)
		}
		return
	}
	os.Exit(adllint.Run(os.Stdout, *dirFlag, suite, flag.Args()...))
}
