// Command oosql runs OOSQL queries against a generated supplier-part
// database through the full pipeline of the paper: parse → translate to ADL
// → rewrite into join queries (§4 strategy) → plan → execute.
//
// Usage:
//
//	oosql [flags] "select s from s in SUPPLIER where ..."
//	echo "query" | oosql [flags]
//
// Flags:
//
//	-suppliers N   size of the SUPPLIER extent (default 50)
//	-parts N       size of the PART extent (default 100)
//	-deliveries N  size of the DELIVERY extent (default 20)
//	-seed N        generator seed (default 94)
//	-explain       print every pipeline stage instead of just the result
//	-naive         execute tuple-at-a-time (nested loops), skipping rewriting
//	-schema        print the schema and exit
//	-load FILE     load the database from a JSON snapshot instead of generating
//	-dump FILE     write the database as a JSON snapshot (after generating)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/schema"
	"repro/internal/storage"
)

func main() {
	var (
		suppliers  = flag.Int("suppliers", 50, "size of the SUPPLIER extent")
		parts      = flag.Int("parts", 100, "size of the PART extent")
		deliveries = flag.Int("deliveries", 20, "size of the DELIVERY extent")
		seed       = flag.Int64("seed", 94, "generator seed")
		explain    = flag.Bool("explain", false, "print every pipeline stage")
		naive      = flag.Bool("naive", false, "execute by nested loops (no rewriting)")
		schemaOnly = flag.Bool("schema", false, "print the schema and exit")
		loadPath   = flag.String("load", "", "load the database from a JSON snapshot")
		dumpPath   = flag.String("dump", "", "write the database as a JSON snapshot")
	)
	flag.Parse()

	if *schemaOnly {
		out, err := experiments.SchemaArtifact()
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}

	var st *storage.Store
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fatal(err)
		}
		st, err = storage.LoadJSON(schema.SupplierPart(), f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		st = bench.Generate(bench.Config{
			Suppliers: *suppliers, Parts: *parts, Deliveries: *deliveries, Seed: *seed,
		})
	}
	if *dumpPath != "" {
		f, err := os.Create(*dumpPath)
		if err != nil {
			fatal(err)
		}
		if err := st.SaveJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *dumpPath)
	}

	src := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(src) == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}
	if strings.TrimSpace(src) == "" {
		if *dumpPath != "" {
			return
		}
		fmt.Fprintln(os.Stderr, "usage: oosql [flags] \"<query>\"  (or pipe a query on stdin)")
		os.Exit(2)
	}
	q, err := core.Prepare(src, st.Catalog())
	if err != nil {
		fatal(err)
	}
	if *explain {
		fmt.Println(q.Explain())
	}
	run := q.Execute
	if *naive {
		run = q.ExecuteNaive
	}
	res, err := run(st)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("-- %d tuples\n", res.Len())
	for _, el := range res.Sorted() {
		fmt.Println(el)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oosql:", err)
	os.Exit(1)
}
