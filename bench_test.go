// Package repro's root benchmark suite: one testing.B family per experiment
// of DESIGN.md §4 (B1–B8), runnable with
//
//	go test -bench=. -benchmem
//
// Each family compares the naive nested-loop execution against the
// set-oriented plans the paper's rewriting enables; cmd/adlbench prints the
// same comparisons as paper-style tables with correctness verification.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/adl"
	"repro/internal/bench"
	"repro/internal/eval"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/plan"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/value"
)

// run executes f once per benchmark iteration, failing on error.
func run(b *testing.B, f func() error) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkB1 — EQ5 (existential nesting over a base table): nested loop vs
// the Rule 1 semijoin, logical-only (NL execution) and hash-executed.
func BenchmarkB1(b *testing.B) {
	for _, sc := range [][2]int{{100, 200}, {400, 800}} {
		w := experiments.NewEQ5(sc[0], sc[1], 94)
		name := fmt.Sprintf("S%d_P%d", sc[0], sc[1])
		b.Run("nested_loop/"+name, func(b *testing.B) {
			run(b, func() error { _, err := w.RunNaive(); return err })
		})
		b.Run("semijoin_nl/"+name, func(b *testing.B) {
			run(b, func() error { _, err := w.RunOptNL(); return err })
		})
		b.Run("semijoin_hash/"+name, func(b *testing.B) {
			run(b, func() error { _, err := w.RunOpt(); return err })
		})
		// Execution-only pair for the vectorized A/B and the alloc
		// regression gate (make bench-vec): cached plan, per-iteration
		// clone — planning cost excluded from both arms alike.
		ctx := &exec.Ctx{DB: w.Store}
		scalarPl := plan.Config{}.Plan(w.Opt)
		vecPl := plan.Config{Vectorized: true}.Plan(w.Opt)
		b.Run("scalar_exec/"+name, func(b *testing.B) {
			run(b, func() error {
				_, err := exec.Collect(exec.CloneTree(scalarPl.Root), ctx)
				return err
			})
		})
		b.Run("vectorized_exec/"+name, func(b *testing.B) {
			run(b, func() error {
				_, err := exec.Collect(exec.CloneTree(vecPl.Root), ctx)
				return err
			})
		})
	}
}

// BenchmarkB2 — EQ4 (referential integrity, ¬∃): nested loop vs μ+antijoin.
func BenchmarkB2(b *testing.B) {
	for _, sc := range [][2]int{{100, 200}, {400, 800}} {
		w := experiments.NewEQ4(sc[0], sc[1], 94)
		name := fmt.Sprintf("S%d_P%d", sc[0], sc[1])
		b.Run("nested_loop/"+name, func(b *testing.B) {
			run(b, func() error { _, err := w.RunNaive(); return err })
		})
		b.Run("unnest_antijoin/"+name, func(b *testing.B) {
			run(b, func() error { _, err := w.RunOpt(); return err })
		})
	}
}

// BenchmarkB3 — the grouping scenario (subset between blocks): nested loop
// vs nestjoin vs the buggy [GaWo87] join+nest (timed for completeness; its
// results silently drop dangling tuples).
func BenchmarkB3(b *testing.B) {
	w := experiments.NewSubset(200, 150, 0.1, 94)
	grouped, ok := w.GroupedPlan()
	if !ok {
		b.Fatal("grouping plan not derivable")
	}
	b.Run("nested_loop", func(b *testing.B) {
		run(b, func() error { _, err := w.RunNaive(); return err })
	})
	b.Run("nestjoin", func(b *testing.B) {
		run(b, func() error { _, err := w.RunOpt(); return err })
	})
	b.Run("join_nest_buggy", func(b *testing.B) {
		run(b, func() error { _, err := eval.EvalSet(grouped, nil, w.Store); return err })
	})
}

// BenchmarkB4 — materializing a set-valued attribute: naive loop,
// unnest-join-nest, set-probe nestjoin, and PNHL across memory budgets.
func BenchmarkB4(b *testing.B) {
	m := experiments.NewMaterialize(400, 1000, 16, 94)
	b.Run("nested_loop", func(b *testing.B) {
		run(b, func() error { _, err := m.RunNaive(); return err })
	})
	b.Run("nestjoin_setprobe", func(b *testing.B) {
		run(b, func() error { _, err := m.RunNestjoin(); return err })
	})
	b.Run("unnest_join_nest", func(b *testing.B) {
		run(b, func() error { _, err := m.RunUnnestJoinNest(); return err })
	})
	for _, budget := range []int{0, 500, 125} {
		b.Run(fmt.Sprintf("pnhl_budget%d", budget), func(b *testing.B) {
			run(b, func() error { _, _, err := m.RunPNHL(budget); return err })
		})
	}
}

// BenchmarkB5 — pointer-based materialize (assembly) vs value hash join.
func BenchmarkB5(b *testing.B) {
	p := experiments.NewPointerJoin(2000, 2000, 94)
	b.Run("value_hash_join", func(b *testing.B) {
		run(b, func() error { _, err := p.RunHashJoin(); return err })
	})
	b.Run("assembly", func(b *testing.B) {
		run(b, func() error { _, err := p.RunAssembly(); return err })
	})
}

// BenchmarkB6 — quantifier exchange (RE3): nested ∀⊇ vs exchanged antijoin.
func BenchmarkB6(b *testing.B) {
	db, naive, opt := experiments.NewForallExchange(400, 400, 94)
	b.Run("nested_loop", func(b *testing.B) {
		run(b, func() error { _, err := eval.EvalSet(naive, nil, db); return err })
	})
	b.Run("antijoin", func(b *testing.B) {
		run(b, func() error { _, err := eval.EvalSet(opt, nil, db); return err })
	})
}

// BenchmarkB7 — the end-to-end §4 strategy on the paper's example queries.
func BenchmarkB7(b *testing.B) {
	workloads := []*experiments.Workload{
		experiments.NewEQ5(300, 500, 94),
		experiments.NewEQ4(300, 500, 94),
		experiments.NewEQ6(80, 500, 94),
		experiments.NewSubset(300, 200, 0.1, 94),
	}
	for _, w := range workloads {
		b.Run("nested_loop/"+w.Name, func(b *testing.B) {
			run(b, func() error { _, err := w.RunNaive(); return err })
		})
		b.Run("optimized/"+w.Name, func(b *testing.B) {
			run(b, func() error { _, err := w.RunOpt(); return err })
		})
	}
}

// BenchmarkB8 — parallel partitioned execution: the supplier-deliveries
// grouping join executed by the serial HashJoin versus the Grace-style
// PartitionedHashJoin (one partition per CPU). The serial/parallel pairs
// let BENCH_*.json track the multicore speedup.
func BenchmarkB8(b *testing.B) {
	for _, sc := range [][2]int{{500, 5000}, {2000, 20000}} {
		name := fmt.Sprintf("S%d_D%d", sc[0], sc[1])
		w := experiments.NewParallelJoin(sc[0], sc[1], -1, 94)
		b.Run("serial/"+name, func(b *testing.B) {
			run(b, func() error { _, err := w.RunSerial(); return err })
		})
		b.Run("parallel/"+name, func(b *testing.B) {
			run(b, func() error { _, err := w.RunParallel(); return err })
		})
	}
}

// BenchmarkB9 — physical strategy selection: the same logical joins planned
// by the threshold-only planner (the previous planner's behavior) versus the
// cost-based optimizer fed with collected statistics. The bar: the
// cost-based choice is no slower on any workload of the sweep, and faster
// where it picks a non-default strategy (the swapped build side on
// inner_asym).
func BenchmarkB9(b *testing.B) {
	workloads := []struct {
		name string
		kind adl.JoinKind
		s, d int
	}{
		{"inner_asym", adl.Inner, 200, 20000},
		{"group_small", adl.NestJ, 500, 1000},
		{"group_big", adl.NestJ, 2000, 20000},
	}
	for _, w := range workloads {
		arms := experiments.NewStrategyJoin(w.name, w.kind, w.s, w.d, -1, 94)
		ctx := &exec.Ctx{DB: arms.Store}
		thresholdOp := plan.Config{Stats: arms.Store}.Compile(arms.Join)
		costPl, _ := arms.PlanOptimizer(true)
		// Both plans agree before timing.
		want, err := exec.Collect(thresholdOp, ctx)
		if err != nil {
			b.Fatal(err)
		}
		got, err := exec.Collect(costPl.Root, ctx)
		if err != nil {
			b.Fatal(err)
		}
		if !value.Equal(got, want) {
			b.Fatalf("%s: cost-based plan diverges from threshold plan", w.name)
		}
		b.Run("threshold/"+w.name, func(b *testing.B) {
			run(b, func() error { _, err := exec.Collect(thresholdOp, ctx); return err })
		})
		b.Run("costbased/"+w.name, func(b *testing.B) {
			run(b, func() error { _, err := exec.Collect(costPl.Root, ctx); return err })
		})
	}
}

// BenchmarkB10 — join-order enumeration: the four-extent star join written
// worst-first, executed in the written (rewriter) order versus the order the
// DP enumerator picks from the same collected statistics. The bar: the
// reordered plan wins by starting from the selective region filter instead
// of the huge ORD ⋈ ITEM.
func BenchmarkB10(b *testing.B) {
	arms := experiments.NewStarJoin(20000, 2000, 400, 8, -1, 94)
	if err := arms.Warm(); err != nil {
		b.Fatal(err)
	}
	ctx := &exec.Ctx{DB: arms.Store}
	baseline := arms.Plan(false)
	reordered := arms.Plan(true)
	// Both plans agree before timing.
	want, err := exec.Collect(baseline.Root, ctx)
	if err != nil {
		b.Fatal(err)
	}
	got, err := exec.Collect(reordered.Root, ctx)
	if err != nil {
		b.Fatal(err)
	}
	if !value.Equal(got, want) {
		b.Fatalf("reordered star plan diverges from rewriter order")
	}
	b.Run("baseline", func(b *testing.B) {
		run(b, func() error { _, err := exec.Collect(baseline.Root, ctx); return err })
	})
	b.Run("reordered", func(b *testing.B) {
		run(b, func() error { _, err := exec.Collect(reordered.Root, ctx); return err })
	})
}

// BenchmarkB11 — index-aware planning: the selective lookup join executed by
// the forced hash join (full inner scan + build) versus the optimizer's
// index-nested-loop plan probing the secondary index per outer row. The bar:
// the index plan wins by never touching the bulk of DELIVERY.
func BenchmarkB11(b *testing.B) {
	arms := experiments.NewLookupJoin(2000, 50000, -1, true, 94)
	if err := arms.Warm(); err != nil {
		b.Fatal(err)
	}
	ctx := &exec.Ctx{DB: arms.Store}
	indexPl := arms.PlanOptimizer()
	if _, ok := indexPl.Root.(*exec.IndexNLJoin); !ok {
		b.Fatalf("optimizer should plan IndexNLJoin, got %T", indexPl.Root)
	}
	// Both plans agree before timing.
	want, err := arms.RunForcedHash(true)
	if err != nil {
		b.Fatal(err)
	}
	got, err := exec.Collect(indexPl.Root, ctx)
	if err != nil {
		b.Fatal(err)
	}
	if !value.Equal(got, want) {
		b.Fatalf("index plan diverges from forced hash join")
	}
	b.Run("forced_hash", func(b *testing.B) {
		run(b, func() error { _, err := arms.RunForcedHash(true); return err })
	})
	b.Run("index_nl", func(b *testing.B) {
		run(b, func() error { _, err := exec.Collect(indexPl.Root, ctx); return err })
	})
}

// BenchmarkB12 — histogram-based cardinality estimation: the Zipf-skewed
// star join planned from the same collected statistics with histograms
// (default) and without (NoHistograms, the NDV-only model). The bar: the
// histogram arm's join order probes FACT with the genuinely selective
// dimension and wins on wall time and page reads.
func BenchmarkB12(b *testing.B) {
	arms := experiments.NewSkewJoin(20000, 400, -1, 94)
	if err := arms.Warm(); err != nil {
		b.Fatal(err)
	}
	ctx := &exec.Ctx{DB: arms.Store}
	ndvPl := arms.Plan(true)
	histPl := arms.Plan(false)
	// Both plans agree before timing.
	want, err := exec.Collect(ndvPl.Root, ctx)
	if err != nil {
		b.Fatal(err)
	}
	got, err := exec.Collect(histPl.Root, ctx)
	if err != nil {
		b.Fatal(err)
	}
	if !value.Equal(got, want) {
		b.Fatalf("histogram plan diverges from the NDV plan")
	}
	b.Run("ndv_only", func(b *testing.B) {
		run(b, func() error { _, err := exec.Collect(ndvPl.Root, ctx); return err })
	})
	b.Run("histograms", func(b *testing.B) {
		run(b, func() error { _, err := exec.Collect(histPl.Root, ctx); return err })
	})
}

// BenchmarkB13 — vectorized batch execution against the scalar reference on
// the large filter + semi-join pipeline, execution-only: both arms run a
// per-iteration clone of a cached plan (the serving path's shape), so the
// comparison isolates the operators from planning. The alloc regression gate
// (make bench-vec) holds the vectorized arm's allocs/op to ≤5% of scalar.
func BenchmarkB13(b *testing.B) {
	for _, sc := range [][2]int{{100, 10000}, {400, 40000}} {
		w := experiments.NewVecJoin(sc[0], sc[1], 0, 94)
		if err := w.Warm(); err != nil {
			b.Fatal(err)
		}
		ctx := &exec.Ctx{DB: w.Store}
		scalarPl, vecPl := w.Plan(false), w.Plan(true)
		want, err := exec.Collect(exec.CloneTree(scalarPl.Root), ctx)
		if err != nil {
			b.Fatal(err)
		}
		got, err := exec.Collect(exec.CloneTree(vecPl.Root), ctx)
		if err != nil {
			b.Fatal(err)
		}
		if !value.Equal(got, want) {
			b.Fatalf("vectorized arm diverges from scalar at scale %v", sc)
		}
		name := fmt.Sprintf("S%d_D%d", sc[0], sc[1])
		b.Run("scalar/"+name, func(b *testing.B) {
			run(b, func() error {
				_, err := exec.Collect(exec.CloneTree(scalarPl.Root), ctx)
				return err
			})
		})
		b.Run("vectorized/"+name, func(b *testing.B) {
			run(b, func() error {
				_, err := exec.Collect(exec.CloneTree(vecPl.Root), ctx)
				return err
			})
		})
	}
}

// BenchmarkB14 — the four-way parallel-vectorized A/B on the B13 pipeline,
// execution-only: scalar, parallel partitioned operators, vectorized batch
// kernels, and the morsel-driven exchange feeding the partitioned batch
// join. Sub-names pair up under benchjson -alloc-gate (scalar vs vectorized
// AND scalar vs parallel-vectorized at S400).
func BenchmarkB14(b *testing.B) {
	for _, sc := range [][2]int{{100, 10000}, {400, 40000}} {
		w := experiments.NewVecJoin(sc[0], sc[1], 0, 94)
		if err := w.Warm(); err != nil {
			b.Fatal(err)
		}
		ctx := &exec.Ctx{DB: w.Store}
		arms := []struct {
			name       string
			vectorized bool
			parallel   bool
		}{
			{"scalar", false, false},
			{"parallel", false, true},
			{"vectorized", true, false},
			{"parallel-vectorized", true, true},
		}
		want, err := exec.Collect(exec.CloneTree(w.PlanArm(false, false, 4).Root), ctx)
		if err != nil {
			b.Fatal(err)
		}
		name := fmt.Sprintf("S%d_D%d", sc[0], sc[1])
		for _, arm := range arms {
			pl := w.PlanArm(arm.vectorized, arm.parallel, 4)
			got, err := exec.Collect(exec.CloneTree(pl.Root), ctx)
			if err != nil {
				b.Fatal(err)
			}
			if !value.Equal(got, want) {
				b.Fatalf("%s arm diverges from scalar at scale %v", arm.name, sc)
			}
			b.Run(arm.name+"/"+name, func(b *testing.B) {
				run(b, func() error {
					_, err := exec.Collect(exec.CloneTree(pl.Root), ctx)
					return err
				})
			})
		}
	}
}

// BenchmarkParallelPlanner — the same optimized query compiled by the serial
// planner and by the parallel configuration (stats-fed threshold), end to
// end through plan.Config.Compile.
func BenchmarkParallelPlanner(b *testing.B) {
	st := bench.Generate(bench.Config{Suppliers: 3000, Parts: 10, Fanout: 2,
		Deliveries: 30000, Seed: 94})
	j := adl.JoinE(adl.T("DELIVERY"), "d", "s",
		adl.EqE(adl.Dot(adl.V("d"), "supplier"), adl.Dot(adl.V("s"), "eid")),
		adl.T("SUPPLIER"))
	serial := plan.Compile(j)
	parallel := plan.Config{Stats: st, ParallelThreshold: 1}.Compile(j)
	if _, ok := parallel.(*exec.PartitionedHashJoin); !ok {
		b.Fatalf("parallel config should plan PartitionedHashJoin, got %T", parallel)
	}
	ctx := &exec.Ctx{DB: st}
	b.Run("serial", func(b *testing.B) {
		run(b, func() error { _, err := exec.Collect(serial, ctx); return err })
	})
	b.Run("parallel", func(b *testing.B) {
		run(b, func() error { _, err := exec.Collect(parallel, ctx); return err })
	})
}

// BenchmarkNestjoinAblation compares the three nestjoin implementations the
// paper names in §6.1 ("common join implementation methods like the
// sort-merge join, or the hash join can be adapted") on the same equi-key
// grouping join.
func BenchmarkNestjoinAblation(b *testing.B) {
	// Nest each supplier's deliveries: SUPPLIER ⊣(s.eid = d.supplier) DELIVERY,
	// a natural equi-key grouping join all three implementations support.
	lk := exec.NewScalar(adl.Dot(adl.V("s"), "eid"), "s")
	rk := exec.NewScalar(adl.Dot(adl.V("d"), "supplier"), "d")
	pred := exec.NewScalar(adl.EqE(adl.Dot(adl.V("s"), "eid"), adl.Dot(adl.V("d"), "supplier")), "s", "d")
	st2 := experiments.NewPointerJoin(400, 2000, 94).Store
	ctx := &exec.Ctx{DB: st2}
	mk := map[string]func() exec.Operator{
		"nl": func() exec.Operator {
			return &exec.NLJoin{Kind: adl.NestJ, LVar: "s", RVar: "d", Pred: pred, As: "ds",
				L: &exec.Scan{Table: "SUPPLIER"}, R: &exec.Scan{Table: "DELIVERY"}}
		},
		"hash": func() exec.Operator {
			return &exec.HashJoin{Kind: adl.NestJ, LVar: "s", RVar: "d", LKey: lk, RKey: rk, As: "ds",
				L: &exec.Scan{Table: "SUPPLIER"}, R: &exec.Scan{Table: "DELIVERY"}}
		},
		"sortmerge": func() exec.Operator {
			return &exec.SortMergeJoin{Kind: adl.NestJ, LVar: "s", RVar: "d", LKey: lk, RKey: rk, As: "ds",
				L: &exec.Scan{Table: "SUPPLIER"}, R: &exec.Scan{Table: "DELIVERY"}}
		},
	}
	// All three agree before timing.
	var ref interface{ Len() int }
	for _, name := range []string{"nl", "hash", "sortmerge"} {
		res, err := exec.Collect(mk[name](), ctx)
		if err != nil {
			b.Fatal(err)
		}
		if ref == nil {
			ref = res
		} else if res.Len() != ref.Len() {
			b.Fatalf("%s nestjoin diverges: %d vs %d", name, res.Len(), ref.Len())
		}
	}
	for _, name := range []string{"nl", "hash", "sortmerge"} {
		op := mk[name]()
		b.Run(name, func(b *testing.B) {
			run(b, func() error { _, err := exec.Collect(op, ctx); return err })
		})
	}
}

// BenchmarkJoinAblation compares physical join implementations on the same
// logical semijoin — the paper's motivation for join operators: "a choice
// can be made between various efficient join implementations" (§1).
func BenchmarkJoinAblation(b *testing.B) {
	w := experiments.NewEQ5(400, 800, 94)
	join, ok := w.Opt.(*adl.Join)
	if !ok {
		b.Fatalf("EQ5 optimized form is %T", w.Opt)
	}
	ctx := &exec.Ctx{DB: w.Store}
	b.Run("nl_semijoin", func(b *testing.B) {
		op := &exec.NLJoin{Kind: adl.Semi,
			L: &exec.Scan{Table: "SUPPLIER"}, R: exec_compile(join.R),
			LVar: join.LVar, RVar: join.RVar,
			Pred: exec.NewScalar(join.On, join.LVar, join.RVar)}
		run(b, func() error { _, err := exec.Collect(op, ctx); return err })
	})
	b.Run("set_probe_semijoin", func(b *testing.B) {
		run(b, func() error { _, err := w.RunOpt(); return err })
	})
}

// exec_compile lowers a join operand (possibly σ over a table) for the
// ablation arm.
func exec_compile(e adl.Expr) exec.Operator {
	if s, ok := e.(*adl.Select); ok {
		if t, ok := s.Src.(*adl.Table); ok {
			return &exec.Filter{Child: &exec.Scan{Table: t.Name}, Var: s.Var,
				Pred: exec.NewScalar(s.Pred, s.Var)}
		}
	}
	if t, ok := e.(*adl.Table); ok {
		return &exec.Scan{Table: t.Name}
	}
	return &exec.ExprScan{Expr: e}
}

// BenchmarkServeQuery — the serving layer's plan cache: repeated execution
// of one query through the server engine with the cache on (plan once, clone
// the operator tree per run) vs off (full parse/typecheck/rewrite/plan every
// time). The replan arm measures the cost of one epoch-drift re-plan per
// iteration, the upper bound a client sees right after bulk inserts.
func BenchmarkServeQuery(b *testing.B) {
	const q = `select p.pname from p in PART where p.color = "red"`
	mk := func(noCache bool) *server.Engine {
		st := bench.Generate(bench.Config{Suppliers: 200, Parts: 400, Deliveries: 100, Seed: 94})
		if err := st.CreateIndex("PART", "color", storage.HashIndex); err != nil {
			b.Fatal(err)
		}
		st.Analyze()
		return server.New(st, server.Options{NoPlanCache: noCache, Parallelism: 1})
	}
	b.Run("plancache", func(b *testing.B) {
		eng := mk(false)
		if _, err := eng.Query(q); err != nil { // warm the cache
			b.Fatal(err)
		}
		run(b, func() error { _, err := eng.Query(q); return err })
	})
	b.Run("no_cache", func(b *testing.B) {
		eng := mk(true)
		run(b, func() error { _, err := eng.Query(q); return err })
	})
	b.Run("replan", func(b *testing.B) {
		eng := mk(false)
		run(b, func() error {
			// Invalidate by bumping the stats epoch the way CreateIndex does:
			// drop and recreate an orthogonal index.
			if err := eng.Store().CreateIndex("PART", "price", storage.OrderedIndex); err != nil {
				return err
			}
			_, err := eng.Query(q)
			return err
		})
	})
}
