// The Complex Object bug, live — the paper's Figure 2. The classical
// relational technique for unnesting queries with predicates between blocks
// ([Kim82]/[GaWo87]: join, group, select, project) silently loses dangling
// outer tuples. This demo runs the nested query, the buggy join+nest plan
// and the nestjoin plan side by side on the paper's example tables, then
// shows the Table 3 static analysis that tells the optimizer when grouping
// is safe.
package main

import (
	"fmt"
	"log"

	"repro/internal/adl"
	"repro/internal/bench"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/rewrite"
	"repro/internal/types"
)

func main() {
	// The full Figure 2 walk-through (generated, not hard-coded).
	out, err := experiments.Artifacts()["F2"]()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	// Now the other direction: a predicate whose P(x, ∅) is statically
	// false — membership — where the guard ADMITS grouping and the flat
	// join plan is correct.
	fmt.Println("When is grouping safe? P(x, ∅) must reduce to false (Table 3):")
	db := bench.Figure2DB()
	ctx := rewrite.NewStaticContext(map[string]*types.Tuple{
		"X": types.NewTuple("a", types.IntType, "c",
			types.NewSet(types.NewTuple("d", types.IntType, "e", types.IntType))),
		"Y": types.NewTuple("d", types.IntType, "e", types.IntType),
	})
	// σ[x : ⟨d=x.a, e=x.a⟩ ∈ σ[y : x.a = y.d](Y)](X): membership between
	// blocks; a dangling x (empty subquery) can never satisfy ∈.
	member := adl.Tup("d", adl.Dot(adl.V("x"), "a"), "e", adl.Dot(adl.V("x"), "a"))
	sub := adl.Sel("y", adl.EqE(adl.Dot(adl.V("x"), "a"), adl.Dot(adl.V("y"), "d")), adl.T("Y"))
	q := adl.Sel("x", adl.CmpE(adl.In, member, sub), adl.T("X"))

	grouped, ok := rewrite.UnnestByGrouping(q, ctx, false)
	if !ok {
		log.Fatal("guard unexpectedly refused a membership predicate")
	}
	fmt.Println("\n  query:        ", q)
	fmt.Println("  grouping plan:", grouped)

	want, err := eval.EvalSet(q, nil, db)
	if err != nil {
		log.Fatal(err)
	}
	got, err := eval.EvalSet(grouped, nil, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  nested-loop result:  %v\n", want)
	fmt.Printf("  grouping result:     %v\n", got)
	if want.Len() == got.Len() && want.SubsetOf(got) {
		fmt.Println("  equal — the guard admitted a safe plan.")
	} else {
		log.Fatal("guard admitted an unsafe plan — this must never happen")
	}
}
