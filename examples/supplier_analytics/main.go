// Supplier analytics — nesting in the select-clause (Example Queries 1
// and 6): build a per-supplier report with the nested set of parts supplied,
// cheap-part counts, and a price ceiling. Queries producing nested results
// go through the nestjoin (§6.1), which groups during the join without
// losing suppliers that supply nothing.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/value"
)

func main() {
	st := bench.Generate(bench.Config{
		Suppliers: 8, Parts: 12, Fanout: 3, EmptyFrac: 0.25, Seed: 41,
	})

	// Example Query 6 extended: supplier name, the parts supplied (as full
	// objects), how many of them are cheap, and the maximum price — a
	// nested result built by one nestjoin.
	q, err := core.Prepare(`
		select (sname = s.sname,
		        supplied = select p from p in PART where p in s.parts_supplied,
		        cheap = count(select c from c in PART
		                      where c in s.parts_supplied and c.price < 50))
		from s in SUPPLIER`, st.Catalog())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("optimized form:")
	fmt.Println(" ", q.Rewritten.Expr)
	fmt.Println("options used:", q.Rewritten.OptionsUsed)
	fmt.Println()

	res, err := q.Execute(st)
	if err != nil {
		log.Fatal(err)
	}
	// Cross-check against nested-loop semantics.
	ref, err := q.ExecuteNaive(st)
	if err != nil {
		log.Fatal(err)
	}
	if !value.Equal(res, ref) {
		log.Fatal("plans disagree — this must never happen")
	}

	for _, el := range res.Sorted() {
		row := el.(*value.Tuple)
		name := row.MustGet("sname")
		supplied := row.MustGet("supplied").(*value.Set)
		cheap := row.MustGet("cheap")
		fmt.Printf("%s supplies %d parts (%s cheap):\n", name, supplied.Len(), cheap)
		for _, p := range supplied.Sorted() {
			pt := p.(*value.Tuple)
			fmt.Printf("    %-10s %3s  %s\n",
				pt.MustGet("pname"), pt.MustGet("price"), pt.MustGet("color"))
		}
		if supplied.Len() == 0 {
			fmt.Println("    (nothing — preserved by the nestjoin, not dropped)")
		}
	}
}
