// Referential integrity audit — the paper's Example Query 4: find suppliers
// holding references to parts that do not exist. The nested form needs a
// scan of PART per element of every supplier's parts set; the optimizer's
// attribute-unnest option (μ) plus Rule 1 turns it into a single hash
// antijoin. Both plans are run and timed, and their results compared.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/value"
)

func main() {
	// A database where 2% of suppliers violate referential integrity.
	st := bench.Generate(bench.Config{
		Suppliers: 2000, Parts: 4000, Fanout: 8, DanglingFrac: 0.02, Seed: 7,
	})

	q, err := core.Prepare(`
		select s.eid from s in SUPPLIER
		where exists z in s.parts_supplied :
		      not exists p in PART : z = p`, st.Catalog())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("nested form:   ", q.ADL)
	fmt.Println("optimized form:", q.Rewritten.Expr)
	fmt.Println()

	start := time.Now()
	naive, err := q.ExecuteNaive(st)
	if err != nil {
		log.Fatal(err)
	}
	naiveT := time.Since(start)

	start = time.Now()
	opt, err := q.Execute(st)
	if err != nil {
		log.Fatal(err)
	}
	optT := time.Since(start)

	if !value.Equal(naive, opt) {
		log.Fatal("plans disagree — this must never happen")
	}
	fmt.Printf("violating suppliers: %d of %d\n", opt.Len(), st.Size("SUPPLIER"))
	fmt.Printf("nested loops: %v\n", naiveT)
	fmt.Printf("μ + antijoin: %v  (%.0fx faster)\n", optT, float64(naiveT)/float64(optT))
}
