// Quickstart: define the paper's supplier-part schema, store a few complex
// objects, and run a nested OOSQL query through the full pipeline — parse,
// translate to the ADL algebra, rewrite from nested loops to joins, plan,
// execute.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

func main() {
	// The §2 schema: Supplier, Part, Delivery with their extensions.
	cat := schema.SupplierPart()
	st := storage.New(cat)

	// Insert parts; Insert allocates oids and adds the identity field.
	bolt := mustInsert(st, "PART", value.NewTuple(
		"pname", value.String("bolt"), "price", value.Int(10), "color", value.String("red")))
	nut := mustInsert(st, "PART", value.NewTuple(
		"pname", value.String("nut"), "price", value.Int(5), "color", value.String("blue")))
	gear := mustInsert(st, "PART", value.NewTuple(
		"pname", value.String("gear"), "price", value.Int(25), "color", value.String("red")))

	// Suppliers hold set-valued reference attributes, stored clustered.
	refs := func(oids ...value.OID) *value.Set {
		s := value.EmptySet()
		for _, o := range oids {
			s.Add(value.NewTuple("pid", o))
		}
		return s
	}
	mustInsert(st, "SUPPLIER", value.NewTuple(
		"sname", value.String("acme"), "parts", refs(bolt, nut)))
	mustInsert(st, "SUPPLIER", value.NewTuple(
		"sname", value.String("globex"), "parts", refs(nut)))
	mustInsert(st, "SUPPLIER", value.NewTuple(
		"sname", value.String("initech"), "parts", refs(bolt, gear)))

	// Example Query 5: suppliers supplying red parts — a nested query the
	// rewriter turns into the paper's semijoin.
	q, err := core.Prepare(`
		select s.sname from s in SUPPLIER
		where exists x in s.parts_supplied :
		      exists p in PART : x = p and p.color = "red"`, cat)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(q.Explain())

	res, err := q.Execute(st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("result:")
	for _, el := range res.Sorted() {
		fmt.Println(" ", el)
	}
}

func mustInsert(st *storage.Store, extent string, t *value.Tuple) value.OID {
	oid, err := st.Insert(extent, t)
	if err != nil {
		log.Fatal(err)
	}
	return oid
}
